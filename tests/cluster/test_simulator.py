"""The multi-tenant simulator: completion, accounting, determinism."""

import json

import pytest

from repro.cluster import (
    SCHEDULER_NAMES,
    ClusterSimulator,
    TraceSpec,
    generate_trace,
)
from repro.errors import ConfigurationError
from repro.store import RunLedger
from repro.store.ledger import WALL_COLUMNS

#: One small bursty trace shared by most tests: bursts force queueing
#: and rebalancing even on a small pool, exercising every code path.
TRACE = generate_trace(
    TraceSpec(kind="bursty", num_jobs=8, seed=3, mean_interarrival=10.0)
)


def _simulate(scheduler, trace=TRACE, pool=6, **kwargs):
    return ClusterSimulator(trace, scheduler, pool, **kwargs).run()


def _strip_wall(rows):
    return [
        {k: v for k, v in row.items() if k not in WALL_COLUMNS}
        for row in rows
    ]


class TestCompletion:
    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    def test_every_job_completes(self, scheduler):
        result = _simulate(scheduler)
        assert len(result.jobs) == len(TRACE)
        for job in result.jobs:
            assert job["submit_time"] <= job["start_time"]
            assert job["start_time"] < job["finish_time"]
            assert job["jct"] == pytest.approx(
                job["finish_time"] - job["submit_time"]
            )
            assert job["queue_delay"] >= 0
            assert job["initial_workers"] >= job["min_workers"]

    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    def test_accounting_is_consistent(self, scheduler):
        result = _simulate(scheduler)
        assert result.makespan == max(
            job["finish_time"] for job in result.jobs
        )
        assert 0.0 < result.mean_utilization <= 1.0
        # All GPUs are back in the pool at the end.
        assert result.pool_timeline[-1][1] == 0
        assert 0 < result.p50_jct <= result.p99_jct
        assert result.mean_queue_delay >= 0.0

    def test_job_events_are_emitted(self):
        result = _simulate("elastic")
        names = [event.name for event in result.events]
        assert names.count("job.submitted") == len(TRACE)
        assert names.count("job.started") == len(TRACE)
        assert names.count("job.finished") == len(TRACE)


class TestPolicyBehavior:
    def test_fifo_never_resizes(self):
        assert _simulate("fifo").total_resizes == 0

    def test_elastic_schedulers_resize(self):
        # Bursty arrivals force shrinks at each burst and grows as the
        # burst drains; both elastic policies must actually exercise the
        # membership join/drain path.
        assert _simulate("fair").total_resizes > 0
        assert _simulate("elastic").total_resizes > 0

    def test_elastic_beats_fifo_on_bursty_mean_jct(self):
        fifo = _simulate("fifo")
        elastic = _simulate("elastic")
        assert elastic.mean_jct < fifo.mean_jct

    def test_fifo_queues_behind_the_head(self):
        result = _simulate("fifo")
        assert result.mean_queue_delay > 0


class TestDeterminism:
    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    def test_rerun_is_bit_identical(self, scheduler):
        first = _simulate(scheduler)
        second = _simulate(scheduler)
        assert first.jobs == second.jobs
        assert first.makespan == second.makespan
        assert first.pool_timeline == second.pool_timeline
        assert first.events_scheduled == second.events_scheduled

    def test_ledger_rows_identical_modulo_wall(self, tmp_path):
        paths = []
        for index in range(2):
            path = tmp_path / f"ledger{index}.sqlite"
            with RunLedger(path) as ledger:
                ledger.record_cluster_run(
                    _simulate("elastic"), label="pin", trace="bursty"
                )
            paths.append(path)
        rows = []
        for path in paths:
            with RunLedger(path) as ledger:
                rows.append((
                    _strip_wall(ledger.cluster_runs()),
                    _strip_wall(ledger.cluster_jobs()),
                ))
        assert rows[0] == rows[1]

    def test_simulator_instance_runs_once(self):
        simulator = ClusterSimulator(TRACE, "fifo", 6)
        simulator.run()
        with pytest.raises(ConfigurationError):
            simulator.run()


class TestFaults:
    def test_crashes_roll_up_into_job_rows(self):
        result = _simulate(
            "fair", crash_probability=0.2, crash_seed=5
        )
        # Every job still completes (recovery is PR 3's job) and the
        # fault summaries land in the per-job accounting.
        assert len(result.jobs) == len(TRACE)
        failures = sum(
            json.loads(job["faults"])["failures"]
            for job in result.jobs
            if job["faults"] is not None
        )
        assert failures > 0

    def test_crash_runs_are_deterministic(self):
        kwargs = dict(crash_probability=0.2, crash_seed=5)
        assert (
            _simulate("fair", **kwargs).jobs
            == _simulate("fair", **kwargs).jobs
        )


class TestValidation:
    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSimulator((), "fifo", 4)

    def test_pool_smaller_than_a_min_rejected(self):
        trace = generate_trace(
            TraceSpec(num_jobs=2, seed=0, min_workers_range=(2, 2))
        )
        with pytest.raises(ConfigurationError):
            ClusterSimulator(trace, "fifo", 1)

    def test_bad_crash_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSimulator(TRACE, "fifo", 4, crash_probability=1.0)


class TestLedgerIntegration:
    def test_round_trip_and_validate(self, tmp_path):
        path = tmp_path / "cluster.sqlite"
        with RunLedger(path) as ledger:
            run_id = ledger.record_cluster_run(
                _simulate("elastic"), label="smoke", trace="bursty"
            )
            assert run_id == 0
            assert ledger.validate() == []
            runs = ledger.cluster_runs()
            assert len(runs) == 1
            assert runs[0]["scheduler"] == "elastic"
            assert runs[0]["num_jobs"] == len(TRACE)
            jobs = ledger.cluster_jobs(run_id)
            assert len(jobs) == len(TRACE)
            assert all(
                isinstance(job["resizes"], list) for job in jobs
            )
