"""The ``repro cluster`` CLI: run, compare, ledger recording."""

import pytest

from repro.cli import main
from repro.store import RunLedger
from repro.store.validate import main as validate_main

_SMALL = ["--trace-kind", "bursty", "--jobs", "8", "--seed", "3",
          "--mean-interarrival", "10", "--pool", "6"]


class TestClusterRun:
    def test_run_prints_summary(self, capsys):
        assert main(["cluster", "run", *_SMALL,
                     "--scheduler", "elastic"]) == 0
        out = capsys.readouterr().out
        assert "throughput-elastic" in out
        assert "Mean JCT" in out
        assert "Makespan" in out

    def test_per_job_table(self, capsys):
        assert main(["cluster", "run", *_SMALL, "--scheduler", "fifo",
                     "--per-job"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        for job_id in range(8):
            assert any(
                line.split() and line.split()[0] == str(job_id)
                for line in lines
            )

    def test_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "cluster.trace.json"
        assert main(["cluster", "run", *_SMALL, "--scheduler", "fair",
                     "--trace-out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        names = {event["name"] for event in payload["traceEvents"]}
        assert "job.submitted" in names
        assert "job.finished" in names

    def test_unknown_scheduler_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["cluster", "run", *_SMALL, "--scheduler", "lottery"])


class TestClusterCompare:
    def test_compare_records_and_validates(self, tmp_path, capsys):
        ledger_path = tmp_path / "cluster.sqlite"
        assert main(["cluster", "compare", *_SMALL,
                     "--ledger", str(ledger_path)]) == 0
        out = capsys.readouterr().out
        assert "FIFO" in out
        assert "fair-share" in out
        assert "throughput-elastic" in out
        assert "best mean JCT" in out
        with RunLedger(ledger_path) as ledger:
            assert len(ledger.cluster_runs()) == 3
            assert ledger.validate() == []
        assert validate_main([str(ledger_path)]) == 0
        assert "3 cluster runs" in capsys.readouterr().out

    def test_acceptance_elastic_beats_fifo_on_bursty_100_jobs(
        self, tmp_path, capsys
    ):
        # The PR's headline claim, pinned end to end: on a 100-job
        # bursty trace the throughput-elastic scheduler strictly beats
        # run-to-completion FIFO on mean JCT.
        ledger_path = tmp_path / "acceptance.sqlite"
        assert main([
            "cluster", "compare", "--trace-kind", "bursty",
            "--jobs", "100", "--seed", "0", "--mean-interarrival", "10",
            "--pool", "16", "--ledger", str(ledger_path),
        ]) == 0
        capsys.readouterr()
        with RunLedger(ledger_path) as ledger:
            runs = {
                row["scheduler"]: row for row in ledger.cluster_runs()
            }
        assert set(runs) == {"fifo", "fair", "elastic"}
        for row in runs.values():
            assert row["num_jobs"] == 100
            assert row["makespan"] > 0
            assert row["mean_jct"] > 0
            assert 0 < row["p50_jct"] <= row["p99_jct"]
            assert 0.0 < row["mean_utilization"] <= 1.0
        assert runs["elastic"]["mean_jct"] < runs["fifo"]["mean_jct"]
