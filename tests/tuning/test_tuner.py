"""Integration tests for the two-phase configuration tuner."""

import pytest

from repro.errors import TuningError
from repro.tuning import ConfigurationTuner


@pytest.fixture(scope="module")
def tuner_and_result(vgg19_partition):
    tuner = ConfigurationTuner(
        vgg19_partition, total_batch=256, num_workers=8,
        profile_iterations=2,
    )
    return tuner, tuner.tune()


class TestTwoPhases:
    def test_case_count_matches_paper(self, tuner_and_result):
        """10 Phase-1 cases + 3 Phase-2 cases = the paper's 13."""
        _, result = tuner_and_result
        assert len(result.phase1_cases) == 10
        assert len([c for c in result.cases if c.phase == 2]) == 3
        assert len(result.cases) == 13

    def test_warmup_iteration_accounting(self, tuner_and_result):
        _, result = tuner_and_result
        assert result.warmup_iterations == 13 * 2

    def test_phase1_runs_without_ctd(self, tuner_and_result):
        _, result = tuner_and_result
        assert all(c.subset_size == 8 for c in result.phase1_cases)

    def test_phase2_fixes_phase1_weights(self, tuner_and_result):
        _, result = tuner_and_result
        best_p1 = min(
            result.phase1_cases, key=lambda c: c.per_iteration_time
        )
        for case in result.cases:
            if case.phase == 2:
                assert case.weights == best_p1.weights

    def test_phase2_halves_subsets(self, tuner_and_result):
        _, result = tuner_and_result
        sizes = [c.subset_size for c in result.cases if c.phase == 2]
        assert sizes == [4, 2, 1]

    def test_best_case_is_global_minimum(self, tuner_and_result):
        _, result = tuner_and_result
        best = result.best_case
        assert best.per_iteration_time == min(
            c.per_iteration_time for c in result.cases
        )
        assert result.best_weights == best.weights
        assert result.best_subset_size == best.subset_size


class TestDiagnostics:
    def test_gaps_are_fractions(self, tuner_and_result):
        _, result = tuner_and_result
        for gap in (
            result.phase1_gap(),
            result.phase2_gap(),
            result.overall_gap(),
        ):
            assert 0 <= gap < 1

    def test_overall_gap_at_least_phase_gaps(self, tuner_and_result):
        _, result = tuner_and_result
        assert result.overall_gap() >= result.phase1_gap() - 1e-12
        assert result.overall_gap() >= result.phase2_gap() - 1e-12

    def test_tuning_improves_over_worst_case(self, tuner_and_result):
        """The whole point of Fig. 6: the gap is material, not noise."""
        _, result = tuner_and_result
        assert result.overall_gap() > 0.05

    def test_normalized_times_match_footnote16(self, tuner_and_result):
        _, result = tuner_and_result
        normalized = result.normalized_times()
        assert len(normalized) == 13
        assert min(normalized) == 0.0
        assert all(0 <= v < 1 for v in normalized)


class TestTunedConfig:
    def test_tuned_config_uses_best_case(self, tuner_and_result):
        tuner, result = tuner_and_result
        config = tuner.tuned_config(iterations=50, result=result)
        assert config.weights == result.best_weights
        assert config.conditional_subset_size == result.best_subset_size
        assert config.iterations == 50

    def test_invalid_profile_iterations(self, vgg19_partition):
        with pytest.raises(TuningError):
            ConfigurationTuner(
                vgg19_partition, 128, 8, profile_iterations=0
            )
