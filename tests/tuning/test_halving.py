"""Successive halving must match exhaustive search across the zoo.

The guarantee the tuner's docstring makes — same winner, strictly fewer
simulated warm-up iterations — is asserted here for every zoo model at
N ∈ {4, 8, 16}.  Models without a published paper partition (or whose
paper partition has too many levels for an exhaustive sweep, like
resnet152's 94) use the 3-way quantile partition; what matters is that
both strategies search the identical candidate space.
"""

import pytest

from repro.errors import PartitionError
from repro.exec import ResultCache, SweepExecutor
from repro.models import available_models, get_model
from repro.partition import paper_partition, quantile_partition
from repro.profiling import ThroughputProfiler
from repro.tuning import (
    PHASE1_EXHAUSTIVE,
    PHASE1_HALVING,
    ConfigurationTuner,
)


def zoo_partition(model_name, profiler):
    model = get_model(model_name)
    try:
        partition = paper_partition(model, profiler)
    except PartitionError:
        return quantile_partition(model, 3, profiler)
    if len(partition) > 8:  # exhaustive sweep would be intractable
        return quantile_partition(model, 3, profiler)
    return partition


@pytest.mark.parametrize("model_name", available_models())
def test_halving_matches_exhaustive_with_fewer_iterations(
    model_name, profiler
):
    partition = zoo_partition(model_name, profiler)
    for num_workers in (4, 8, 16):
        # One shared in-memory cache per (model, N): the finalists'
        # full-depth measurements are identical across strategies, so
        # sharing halves the test's simulation bill without touching
        # what either strategy would compute.
        cache = ResultCache()

        def tune(phase1):
            tuner = ConfigurationTuner(
                partition,
                total_batch=128,
                num_workers=num_workers,
                profile_iterations=5,
                executor=SweepExecutor(cache=cache),
            )
            return tuner.tune(phase1=phase1)

        exhaustive = tune(PHASE1_EXHAUSTIVE)
        halving = tune(PHASE1_HALVING)

        assert (halving.best_weights, halving.best_subset_size) == (
            exhaustive.best_weights,
            exhaustive.best_subset_size,
        ), f"{model_name} at N={num_workers}"
        assert (
            halving.warmup_iterations < exhaustive.warmup_iterations
        ), f"{model_name} at N={num_workers}"
        assert halving.cases_pruned > 0
        assert exhaustive.cases_pruned == 0
        # Halving's extra shallow probes are counted as measurements.
        assert halving.cases_profiled > len(halving.cases)
        # The report's cases stay full-depth only: every phase-1 case
        # it kept also appears in the exhaustive sweep with the same
        # measured time.
        exhaustive_times = {
            (case.weights, case.subset_size): case.per_iteration_time
            for case in exhaustive.cases
        }
        for case in halving.cases:
            assert (
                exhaustive_times[(case.weights, case.subset_size)]
                == case.per_iteration_time
            )


def test_unknown_phase1_strategy_rejected(vgg19_partition):
    from repro.errors import TuningError

    tuner = ConfigurationTuner(
        vgg19_partition, total_batch=128, num_workers=8
    )
    with pytest.raises(TuningError, match="phase-1 strategy"):
        tuner.tune(phase1="bogus")
