"""Tuner behaviour on memory-infeasible configuration cases."""

import pytest

from repro.errors import TuningError
from repro.hardware import ClusterSpec, GpuSpec
from repro.tuning import ConfigurationTuner
from repro.tuning.search import normalize_times


class TestInfeasibleCases:
    def test_oom_cases_profile_as_inf(self, vgg19_partition):
        """At N=16 with total batch 512, w_2=16 gives a single SM-2 token
        of batch 512 — beyond the K40c's memory.  The tuner must skip
        it, not crash."""
        tuner = ConfigurationTuner(
            vgg19_partition,
            total_batch=512,
            num_workers=16,
            cluster_spec=ClusterSpec(num_nodes=16),
            profile_iterations=1,
        )
        result = tuner.tune()
        infinite = [
            c for c in result.cases
            if c.per_iteration_time == float("inf")
        ]
        assert infinite, "the sweep should contain infeasible cases"
        assert result.best_case.per_iteration_time < float("inf")

    def test_gaps_ignore_infeasible_cases(self, vgg19_partition):
        tuner = ConfigurationTuner(
            vgg19_partition,
            total_batch=512,
            num_workers=16,
            cluster_spec=ClusterSpec(num_nodes=16),
            profile_iterations=1,
        )
        result = tuner.tune()
        assert 0 <= result.overall_gap() < 1

    def test_all_infeasible_raises(self, vgg19_partition):
        tiny_gpu = GpuSpec(memory_bytes=2e9)
        tuner = ConfigurationTuner(
            vgg19_partition,
            total_batch=128,
            num_workers=8,
            cluster_spec=ClusterSpec(num_nodes=8, gpu=tiny_gpu),
            profile_iterations=1,
        )
        with pytest.raises(TuningError):
            tuner.tune()

    def test_all_infeasible_fails_fast_after_phase1(
        self, vgg19_partition, monkeypatch
    ):
        """When every Phase-1 case OOMs there is no feasible winner for
        Phase 2 to refine: the tuner must raise at the end of Phase 1
        instead of profiling doomed subsets of an infeasible config."""
        tiny_gpu = GpuSpec(memory_bytes=2e9)
        tuner = ConfigurationTuner(
            vgg19_partition,
            total_batch=128,
            num_workers=8,
            cluster_spec=ClusterSpec(num_nodes=8, gpu=tiny_gpu),
            profile_iterations=1,
        )
        calls = []
        original = tuner._measure_batch

        def counting(cases, iterations):
            calls.extend(cases)
            return original(cases, iterations)

        monkeypatch.setattr(tuner, "_measure_batch", counting)
        with pytest.raises(TuningError, match="infeasible"):
            tuner.tune()
        # Phase 1 profiles all 10 weight candidates (M=3, N=8) with the
        # subset pinned at N; the Phase-2 subset sweep never starts.
        assert len(calls) == 10
        assert all(subset == 8 for _, subset in calls)


class TestNormalizationWithInf:
    def test_inf_normalizes_to_one(self):
        normalized = normalize_times([1.0, 2.0, float("inf")])
        assert normalized[2] == 1.0
        assert normalized[0] == 0.0

    def test_all_inf_rejected(self):
        with pytest.raises(TuningError):
            normalize_times([float("inf"), float("inf")])
