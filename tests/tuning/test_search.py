"""Unit tests for tuning search-space enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TuningError
from repro.tuning import (
    enumerate_weight_candidates,
    normalize_times,
    subset_size_candidates,
    weight_values,
)


class TestWeightValues:
    def test_paper_setting(self):
        """N = 8 gives {1, 2, 4, 8}."""
        assert weight_values(8) == [1, 2, 4, 8]

    def test_non_power_of_two_workers(self):
        assert weight_values(6) == [1, 2, 4]

    def test_single_worker(self):
        assert weight_values(1) == [1]

    def test_invalid(self):
        with pytest.raises(TuningError):
            weight_values(0)


class TestWeightCandidates:
    def test_paper_count_10(self):
        """M = 3, N = 8: the paper's 4 + 3 + 2 + 1 = 10 cases."""
        candidates = enumerate_weight_candidates(3, 8)
        assert len(candidates) == 10

    def test_all_start_with_one_and_nondecreasing(self):
        for candidate in enumerate_weight_candidates(4, 8):
            assert candidate[0] == 1
            assert list(candidate) == sorted(candidate)

    def test_single_level(self):
        assert enumerate_weight_candidates(1, 8) == [(1,)]

    def test_no_duplicates(self):
        candidates = enumerate_weight_candidates(3, 8)
        assert len(set(candidates)) == len(candidates)

    @given(
        levels=st.integers(min_value=1, max_value=5),
        workers=st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=50)
    def test_property_valid_fela_weights(self, levels, workers):
        """Every candidate satisfies FelaConfig's weight constraints."""
        for candidate in enumerate_weight_candidates(levels, workers):
            assert candidate[0] == 1
            for a, b in zip(candidate, candidate[1:]):
                assert b >= a
                assert b % a == 0
                assert (b & (b - 1)) == 0


class TestSubsetSizes:
    def test_paper_setting(self):
        """N = 8: sizes 8, 4, 2, 1 (log2(8)+1 = 4 cases)."""
        assert subset_size_candidates(8) == [8, 4, 2, 1]

    def test_non_power_of_two(self):
        assert subset_size_candidates(6) == [6, 3, 1]

    def test_single_worker(self):
        assert subset_size_candidates(1) == [1]


class TestNormalization:
    def test_paper_footnote16_formula(self):
        """(t - min) / max, NOT (t - min) / (max - min)."""
        times = [2.0, 4.0, 8.0]
        assert normalize_times(times) == [0.0, 0.25, 0.75]

    def test_constant_series_is_zero(self):
        assert normalize_times([3.0, 3.0]) == [0.0, 0.0]

    def test_values_bounded(self):
        normalized = normalize_times([1.0, 5.0, 9.0, 2.0])
        assert all(0 <= v < 1 for v in normalized)

    def test_empty_rejected(self):
        with pytest.raises(TuningError):
            normalize_times([])
