"""Unit tests for ModelGraph shape/cost resolution."""

import pytest

from repro.errors import ConfigurationError
from repro.models import ConvSpec, LinearSpec, ModelGraph, PoolSpec


def tiny_model():
    return ModelGraph(
        "tiny",
        (3, 8, 8),
        [
            ConvSpec(name="conv", out_channels=4),
            PoolSpec(name="pool"),
            LinearSpec(name="fc", out_features=10),
        ],
    )


class TestConstruction:
    def test_shapes_propagate(self):
        model = tiny_model()
        assert model[0].in_shape == (3, 8, 8)
        assert model[0].out_shape == (4, 8, 8)
        assert model[1].out_shape == (4, 4, 4)
        assert model[2].out_shape == (10,)
        assert model.output_shape == (10,)

    def test_empty_model_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelGraph("empty", (3, 8, 8), [])

    def test_len_and_iteration(self):
        model = tiny_model()
        assert len(model) == 3
        assert [p.name for p in model] == ["conv", "pool", "fc"]

    def test_trainable_layers_skip_pool(self):
        model = tiny_model()
        assert [p.name for p in model.trainable_layers] == ["conv", "fc"]


class TestAggregates:
    def test_param_count_sums_layers(self):
        model = tiny_model()
        expected = (3 * 3 * 3 * 4 + 4) + (4 * 4 * 4 * 10 + 10)
        assert model.param_count == expected
        assert model.param_bytes == expected * 4

    def test_flops_sums_layers(self):
        model = tiny_model()
        assert model.forward_flops == pytest.approx(
            sum(p.forward_flops for p in model)
        )
        assert model.train_flops == pytest.approx(3 * model.forward_flops)

    def test_input_bytes(self):
        model = tiny_model()
        assert model.input_floats == 3 * 8 * 8
        assert model.input_bytes == 3 * 8 * 8 * 4

    def test_layer_profile_derived_quantities(self):
        conv = tiny_model()[0]
        assert conv.backward_flops == pytest.approx(2 * conv.forward_flops)
        assert conv.train_flops == pytest.approx(3 * conv.forward_flops)
        assert conv.activation_bytes == conv.activation_floats * 4
        assert conv.param_bytes == conv.param_count * 4


class TestSlice:
    def test_slice_returns_range(self):
        model = tiny_model()
        assert [p.name for p in model.slice(0, 2)] == ["conv", "pool"]

    def test_slice_validation(self):
        model = tiny_model()
        with pytest.raises(ConfigurationError):
            model.slice(2, 2)
        with pytest.raises(ConfigurationError):
            model.slice(0, 99)
        with pytest.raises(ConfigurationError):
            model.slice(-1, 2)
