"""Unit tests for the CNN zoo: layer counts, parameter counts, Table I."""

import pytest

from repro.errors import ConfigurationError
from repro.models import (
    TABLE_I,
    available_models,
    get_model,
)


class TestLayerCounts:
    """Trainable-layer counts must match the literature (paper Table I)."""

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("lenet5", 5),
            ("alexnet", 8),
            ("zfnet", 8),
            ("vgg16", 16),
            ("vgg19", 19),
            ("resnet152", 152),
        ],
    )
    def test_trainable_layer_count(self, name, expected):
        assert len(get_model(name).trainable_layers) == expected

    def test_googlenet_partition_units(self):
        """GoogLeNet is modelled at the paper's 12-unit granularity
        (2 stem convs + 9 inception modules + 1 FC)."""
        assert len(get_model("googlenet").trainable_layers) == 12


class TestParameterCounts:
    """Well-known parameter totals, within 5% (we omit LRN/dropout etc.)."""

    @pytest.mark.parametrize(
        "name,expected_m",
        [
            ("vgg16", 138.4),
            ("vgg19", 143.7),
            ("alexnet", 62.4),
            ("googlenet", 7.0),
        ],
    )
    def test_param_totals(self, name, expected_m):
        params = get_model(name).param_count / 1e6
        assert params == pytest.approx(expected_m, rel=0.05)

    def test_vgg19_forward_flops(self):
        """VGG19 forward is ~19.6 GMACs = ~39 GFLOPs per 224x224 sample."""
        flops = get_model("vgg19").forward_flops / 1e9
        assert flops == pytest.approx(39.3, rel=0.05)


class TestShapes:
    def test_vgg19_ends_in_1000_classes(self):
        assert get_model("vgg19").output_shape == (1000,)

    def test_googlenet_default_input_is_32(self):
        """Paper footnote 17: GoogLeNet input is (batch, 3, 32, 32)."""
        assert get_model("googlenet").input_shape == (3, 32, 32)

    def test_googlenet_custom_input(self):
        model = get_model("googlenet", (3, 224, 224))
        assert model.input_shape == (3, 224, 224)
        assert model.output_shape == (1000,)

    def test_vgg19_anchor_layer_shapes_present(self):
        """The Fig. 1 anchor shapes must exist inside VGG19."""
        signatures = {p.shape_signature for p in get_model("vgg19").layers}
        assert ("conv", 64, 64, 224, 224, 3, 1) in signatures
        assert ("conv", 512, 512, 14, 14, 3, 1) in signatures
        assert ("fc", 4096, 4096) in signatures


class TestRegistry:
    def test_table_i_rows(self):
        names = [entry.name for entry in TABLE_I]
        assert names == [
            "LeNet-5",
            "AlexNet",
            "ZF Net",
            "VGG16",
            "VGG19",
            "GoogleNet",
            "ResNet-152",
            "CUImage",
            "SENet",
        ]

    def test_table_i_years_ascend(self):
        years = [entry.year for entry in TABLE_I]
        assert years == sorted(years)

    def test_builders_cross_check(self):
        """Builders (except GoogLeNet's unit-granular model) reproduce the
        quoted layer number."""
        for entry in TABLE_I:
            if entry.builder is None or entry.name == "GoogleNet":
                continue
            model = entry.builder()
            assert len(model.trainable_layers) == entry.layer_number

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            get_model("transformer-9000")

    def test_available_models_sorted(self):
        models = available_models()
        assert models == sorted(models)
        assert "vgg19" in models
