"""Unit tests for the layer algebra."""

import pytest

from repro.errors import ConfigurationError
from repro.models import (
    BYTES_PER_FLOAT,
    ConvSpec,
    GlobalPoolSpec,
    InceptionBranch,
    InceptionSpec,
    LinearSpec,
    PoolSpec,
)


class TestConv:
    def test_output_shape_same_padding(self):
        conv = ConvSpec(name="c", out_channels=64)
        assert conv.output_shape((3, 224, 224)) == (64, 224, 224)

    def test_output_shape_stride(self):
        conv = ConvSpec(name="c", out_channels=96, kernel=11, stride=4, padding=0)
        assert conv.output_shape((3, 227, 227)) == (96, 55, 55)

    def test_flops_formula(self):
        conv = ConvSpec(name="c", out_channels=64)
        # 2 * k^2 * C_in * C_out * H_out * W_out
        expected = 2 * 9 * 64 * 64 * 224 * 224
        assert conv.forward_flops((64, 224, 224)) == expected

    def test_param_count(self):
        conv = ConvSpec(name="c", out_channels=64)
        assert conv.param_count((3, 224, 224)) == 3 * 3 * 3 * 64 + 64

    def test_signature_uses_paper_format(self):
        conv = ConvSpec(name="c", out_channels=64)
        sig = conv.shape_signature((64, 224, 224))
        assert sig[:5] == ("conv", 64, 64, 224, 224)

    def test_rejects_flat_input(self):
        conv = ConvSpec(name="c", out_channels=8)
        with pytest.raises(ConfigurationError):
            conv.output_shape((128,))

    def test_rejects_vanishing_spatial_size(self):
        conv = ConvSpec(name="c", out_channels=8, kernel=7, stride=1, padding=0)
        with pytest.raises(ConfigurationError):
            conv.output_shape((3, 4, 4))

    def test_trainable(self):
        assert ConvSpec(name="c", out_channels=8).trainable


class TestLinear:
    def test_flattens_spatial_input(self):
        fc = LinearSpec(name="f", out_features=4096)
        assert fc.output_shape((512, 7, 7)) == (4096,)
        assert fc.forward_flops((512, 7, 7)) == 2 * 25088 * 4096

    def test_param_count_includes_bias(self):
        fc = LinearSpec(name="f", out_features=10)
        assert fc.param_count((84,)) == 84 * 10 + 10

    def test_signature(self):
        fc = LinearSpec(name="f", out_features=4096)
        assert fc.shape_signature((4096,)) == ("fc", 4096, 4096)


class TestPool:
    def test_halves_spatial_size(self):
        pool = PoolSpec(name="p")
        assert pool.output_shape((64, 224, 224)) == (64, 112, 112)

    def test_no_params_and_not_trainable(self):
        pool = PoolSpec(name="p")
        assert pool.param_count((64, 8, 8)) == 0
        assert not pool.trainable

    def test_global_pool(self):
        gp = GlobalPoolSpec(name="g")
        assert gp.output_shape((1024, 7, 7)) == (1024, 1, 1)
        assert gp.param_count((1024, 7, 7)) == 0


class TestInception:
    def make_module(self):
        return InceptionSpec(
            name="i3a",
            branches=(
                InceptionBranch(out_channels=64, kernel=1),
                InceptionBranch(out_channels=128, kernel=3, reduce_channels=96),
                InceptionBranch(out_channels=32, kernel=5, reduce_channels=16),
                InceptionBranch(out_channels=32, pool_proj=True),
            ),
        )

    def test_output_concatenates_channels(self):
        module = self.make_module()
        assert module.output_shape((192, 28, 28)) == (256, 28, 28)

    def test_param_count_matches_hand_computation(self):
        module = self.make_module()
        c_in, expected = 192, 0
        expected += c_in * 64 + 64  # 1x1 branch
        expected += c_in * 96 + 96 + 9 * 96 * 128 + 128  # 3x3 branch
        expected += c_in * 16 + 16 + 25 * 16 * 32 + 32  # 5x5 branch
        expected += c_in * 32 + 32  # pool-proj branch
        assert module.param_count((192, 28, 28)) == expected

    def test_flops_positive_and_scale_with_spatial(self):
        module = self.make_module()
        small = module.forward_flops((192, 14, 14))
        large = module.forward_flops((192, 28, 28))
        assert large == pytest.approx(4 * small)

    def test_activation_bytes(self):
        module = self.make_module()
        floats = module.activation_floats((192, 28, 28))
        assert floats == 256 * 28 * 28
        assert BYTES_PER_FLOAT == 4
