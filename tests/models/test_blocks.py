"""Tests for generic computation blocks (MF / PageRank workloads)."""

import pytest

from repro.core import FelaConfig, FelaRuntime
from repro.errors import ConfigurationError
from repro.models import (
    BlockSpec,
    build_matrix_factorization,
    build_pagerank,
)
from repro.partition import partition_by_counts


class TestBlockSpec:
    def test_costs_pass_through(self):
        block = BlockSpec(
            name="b", flops_per_sample=100.0, params=50, output_floats=8
        )
        assert block.forward_flops((8,)) == 100.0
        assert block.param_count((8,)) == 50
        assert block.output_shape((8,)) == (8,)
        assert block.activation_floats((8,)) == 8

    def test_zero_param_block_not_trainable(self):
        block = BlockSpec(
            name="loss", flops_per_sample=2.0, params=0, output_floats=1
        )
        assert not block.trainable

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BlockSpec(name="b", flops_per_sample=-1, params=0,
                      output_floats=1)
        with pytest.raises(ConfigurationError):
            BlockSpec(name="b", flops_per_sample=1, params=0,
                      output_floats=0)

    def test_signature_distinguishes_blocks(self):
        a = BlockSpec(name="a", flops_per_sample=1, params=0, output_floats=1)
        b = BlockSpec(name="b", flops_per_sample=1, params=0, output_floats=1)
        assert a.shape_signature(()) != b.shape_signature(())


class TestMatrixFactorization:
    def test_parameter_budget(self):
        mf = build_matrix_factorization(users=1000, items=100, rank=16)
        assert mf.param_count == 1000 * 16 + 100 * 16

    def test_blocks_are_communication_intensive(self):
        mf = build_matrix_factorization()
        partition = partition_by_counts(mf, [1, 1])
        assert all(sm.communication_intensive for sm in partition)

    def test_runs_under_fela(self):
        mf = build_matrix_factorization(users=100_000, items=10_000)
        partition = partition_by_counts(mf, [1, 1])
        config = FelaConfig(
            partition=partition,
            total_batch=16384,
            num_workers=8,
            weights=(1, 1),
            conditional_subset_size=2,
            iterations=2,
        )
        result = FelaRuntime(config).run()
        assert result.average_throughput > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_matrix_factorization(users=0)


class TestPageRank:
    def test_stripe_structure(self):
        pr = build_pagerank(nodes=1000, partitions=4)
        # 4 scatter blocks + 1 normalize; normalize has no params.
        assert len(pr) == 5
        assert len(pr.trainable_layers) == 4
        assert pr.param_count == 4 * 250

    def test_ctd_applies_to_rank_stripes(self):
        pr = build_pagerank()
        partition = partition_by_counts(pr, [2, 2])
        # Rank-vector stripes: huge state, almost no compute.
        assert all(sm.communication_intensive for sm in partition)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_pagerank(partitions=0)
