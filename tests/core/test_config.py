"""Unit tests for FelaConfig validation and derived token arithmetic."""

import pytest

from repro.core import FelaConfig, SyncMode
from repro.errors import ConfigurationError


def make_config(vgg19_partition, **kwargs):
    defaults = dict(
        partition=vgg19_partition,
        total_batch=128,
        num_workers=8,
        weights=(1, 2, 8),
        iterations=10,
    )
    defaults.update(kwargs)
    return FelaConfig(**defaults)


class TestValidation:
    def test_weight_count_must_match_levels(self, vgg19_partition):
        with pytest.raises(ConfigurationError):
            make_config(vgg19_partition, weights=(1, 2))

    def test_w1_must_be_one(self, vgg19_partition):
        with pytest.raises(ConfigurationError):
            make_config(vgg19_partition, weights=(2, 2, 4))

    def test_weights_must_be_nondecreasing(self, vgg19_partition):
        with pytest.raises(ConfigurationError):
            make_config(vgg19_partition, weights=(1, 4, 2))

    def test_weights_must_be_powers_of_two(self, vgg19_partition):
        with pytest.raises(ConfigurationError):
            make_config(vgg19_partition, weights=(1, 3, 6))

    def test_batch_below_workers_rejected(self, vgg19_partition):
        with pytest.raises(ConfigurationError):
            make_config(vgg19_partition, total_batch=4)

    def test_ssp_needs_staleness(self, vgg19_partition):
        with pytest.raises(ConfigurationError):
            make_config(vgg19_partition, sync_mode=SyncMode.SSP)
        config = make_config(
            vgg19_partition, sync_mode=SyncMode.SSP, staleness=2
        )
        assert config.staleness == 2

    def test_unknown_sync_mode_rejected(self, vgg19_partition):
        with pytest.raises(ConfigurationError):
            make_config(vgg19_partition, sync_mode="magic")

    def test_subset_size_bounds(self, vgg19_partition):
        with pytest.raises(ConfigurationError):
            make_config(vgg19_partition, conditional_subset_size=9)


class TestTokenArithmetic:
    def test_paper_example_counts(self, vgg19_partition):
        """Section III-B: total 128, thresholds 16/32/64-like weights
        (1,2,4) give 8 / 4 / 2 tokens of batch 16 / 32 / 64... scaled to
        our SM-1 threshold of 32: 128/32=4 -> floored at N=8 workers."""
        config = make_config(vgg19_partition, weights=(1, 2, 4))
        counts = config.token_counts()
        batches = config.token_batches()
        assert counts[0] >= config.num_workers  # Equation 2's max(, N)
        assert counts == (8, 4, 2)
        assert batches == (16, 32, 64)

    def test_counts_divide_exactly(self, vgg19_partition):
        for weights in [(1, 1, 1), (1, 2, 8), (1, 8, 8), (1, 4, 4)]:
            config = make_config(vgg19_partition, weights=weights)
            counts = config.token_counts()
            for i in range(len(counts) - 1):
                assert counts[i] % counts[i + 1] == 0

    def test_generation_ratio_matches_weight_ratio(self, vgg19_partition):
        config = make_config(vgg19_partition, weights=(1, 2, 8))
        assert config.generation_ratio(0) == 2
        assert config.generation_ratio(1) == 4

    def test_generation_ratio_out_of_range(self, vgg19_partition):
        config = make_config(vgg19_partition)
        with pytest.raises(ConfigurationError):
            config.generation_ratio(2)

    def test_large_batch_scales_token_count(self, vgg19_partition):
        small = make_config(vgg19_partition, total_batch=128)
        large = make_config(vgg19_partition, total_batch=1024)
        assert large.token_counts()[0] > small.token_counts()[0]

    def test_min_one_token_per_level(self, vgg19_partition):
        config = make_config(vgg19_partition, weights=(1, 8, 8))
        assert all(n >= 1 for n in config.token_counts())


class TestSubset:
    def test_subset_defaults_to_all_workers(self, vgg19_partition):
        config = make_config(vgg19_partition, conditional_subset_size=0)
        assert config.subset_size == 8
        assert config.conditional_subset == frozenset(range(8))

    def test_ctd_disabled_ignores_subset(self, vgg19_partition):
        config = make_config(
            vgg19_partition, conditional_subset_size=2, ctd_enabled=False
        )
        assert config.subset_size == 8

    def test_subset_is_worker_prefix(self, vgg19_partition):
        config = make_config(vgg19_partition, conditional_subset_size=3)
        assert config.conditional_subset == frozenset({0, 1, 2})


class TestReplace:
    def test_replace_revalidates(self, vgg19_partition):
        config = make_config(vgg19_partition)
        with pytest.raises(ConfigurationError):
            config.replace(weights=(1, 4, 2))

    def test_replace_changes_field(self, vgg19_partition):
        config = make_config(vgg19_partition)
        changed = config.replace(iterations=50)
        assert changed.iterations == 50
        assert config.iterations == 10
