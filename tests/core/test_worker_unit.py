"""Direct unit tests of Worker input-fetching behaviour."""

import pytest

from repro.core import FelaConfig, TokenServer, Worker
from repro.errors import SchedulingError
from repro.hardware import Cluster, ClusterSpec


@pytest.fixture()
def setup(vgg19_partition):
    config = FelaConfig(
        partition=vgg19_partition,
        total_batch=128,
        num_workers=4,
        weights=(1, 2, 4),
        iterations=1,
    )
    cluster = Cluster(ClusterSpec(num_nodes=4, latency=0.0))
    server = TokenServer(config, cluster)
    workers = [
        Worker(server, cluster[wid], wid) for wid in range(4)
    ]
    server.begin_iteration(0)
    return config, cluster, server, workers


def run_process(cluster, generator):
    process = cluster.env.process(generator)
    cluster.env.run(process)
    return process.value


class TestSampleFetches:
    def test_local_samples_are_free(self, setup):
        config, cluster, server, workers = setup
        token = next(
            t for t in server.bucket.all_tokens() if t.home_worker == 0
        )
        run_process(cluster, workers[0]._fetch_inputs(token))
        assert cluster.env.now == 0.0
        assert workers[0].bytes_fetched == 0.0

    def test_remote_samples_cost_bandwidth(self, setup):
        config, cluster, server, workers = setup
        token = next(
            t for t in server.bucket.all_tokens() if t.home_worker == 1
        )
        run_process(cluster, workers[0]._fetch_inputs(token))
        expected = token.batch * config.partition.model.input_bytes
        assert workers[0].bytes_fetched == expected
        assert cluster.env.now > 0.0


class TestDependencyFetches:
    def make_t2(self, setup):
        """Complete the first two T-1 tokens and return the minted T-2."""
        config, cluster, server, workers = setup
        tokens = sorted(
            server.bucket.all_tokens(), key=lambda t: t.ordinal
        )[:2]
        for token in tokens:
            server.bucket.remove(token)
            server.info.record_assignment(token.tid, 1)
            server.info.record_completion(token.tid, 1)
            fresh = server.generator.on_completion(token.tid, 1)
            for new_token in fresh:
                server.bucket.add(new_token)
        (t2,) = [t for t in server.bucket.all_tokens() if t.level == 1]
        return t2

    def test_holder_fetch_costs_activation_bytes(self, setup):
        config, cluster, server, workers = setup
        t2 = self.make_t2(setup)
        run_process(cluster, workers[0]._fetch_inputs(t2))
        upstream = config.partition[0]
        dep_batches = sum(
            server.token_by_id(dep).batch for dep in t2.deps
        )
        assert workers[0].bytes_fetched == pytest.approx(
            dep_batches * upstream.output_bytes
        )

    def test_holder_itself_fetches_nothing(self, setup):
        config, cluster, server, workers = setup
        t2 = self.make_t2(setup)
        run_process(cluster, workers[1]._fetch_inputs(t2))
        assert workers[1].bytes_fetched == 0.0

    def test_cached_chunks_not_refetched(self, setup):
        config, cluster, server, workers = setup
        t2 = self.make_t2(setup)
        workers[0].chunks.update(t2.deps)  # already fetched earlier
        run_process(cluster, workers[0]._fetch_inputs(t2))
        assert workers[0].bytes_fetched == 0.0

    def test_missing_dependency_raises(self, setup):
        config, cluster, server, workers = setup
        t2 = self.make_t2(setup)
        server.info.forget_iteration(list(t2.deps))
        with pytest.raises(SchedulingError):
            run_process(cluster, workers[0]._fetch_inputs(t2))
