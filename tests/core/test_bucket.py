"""Unit tests for the token bucket and its STBs."""

import pytest

from repro.core import SampleRange, Token, TokenBucket
from repro.errors import SchedulingError


def token(tid, home=0, level=0, deps=()):
    return Token(
        tid=tid,
        level=level,
        iteration=0,
        ordinal=tid,
        samples=SampleRange(0, 16),
        deps=tuple(deps),
        home_worker=home,
    )


class TestBucket:
    def test_add_routes_to_home_stb(self):
        bucket = TokenBucket(4)
        bucket.add(token(1, home=2))
        assert bucket.stb_size(2) == 1
        assert bucket.stb_size(0) == 0
        assert len(bucket) == 1

    def test_add_out_of_range_home_rejected(self):
        bucket = TokenBucket(2)
        with pytest.raises(SchedulingError):
            bucket.add(token(1, home=5))

    def test_double_add_rejected(self):
        bucket = TokenBucket(2)
        t = token(1)
        bucket.add(t)
        with pytest.raises(SchedulingError):
            bucket.add(t)

    def test_remove(self):
        bucket = TokenBucket(2)
        t = token(1, home=1)
        bucket.add(t)
        bucket.remove(t)
        assert len(bucket) == 0
        with pytest.raises(SchedulingError):
            bucket.remove(t)

    def test_all_tokens_spans_stbs(self):
        bucket = TokenBucket(3)
        for tid, home in ((1, 0), (2, 1), (3, 1), (4, 2)):
            bucket.add(token(tid, home=home))
        assert {t.tid for t in bucket.all_tokens()} == {1, 2, 3, 4}

    def test_nonempty_stbs_with_exclusion(self):
        bucket = TokenBucket(3)
        bucket.add(token(1, home=0))
        bucket.add(token(2, home=2))
        assert bucket.nonempty_stbs() == [0, 2]
        assert bucket.nonempty_stbs(exclude=0) == [2]

    def test_invalid_worker_count(self):
        with pytest.raises(SchedulingError):
            TokenBucket(0)
