"""Unit tests for the collective communication primitives."""

import pytest

from repro.core import broadcast, gather, parameter_server_sync, ring_allreduce
from repro.errors import ConfigurationError
from repro.hardware import Cluster


def run_collective(cluster, generator):
    done = []

    def proc():
        yield from generator
        done.append(cluster.env.now)

    cluster.env.process(proc())
    cluster.env.run()
    return done[0]


class TestRingAllreduce:
    def test_bandwidth_optimal_cost(self, small_cluster_spec):
        """2(k-1)/k * size per link at full rate."""
        cluster = Cluster(small_cluster_spec)
        size = 4e9  # 4 GB over 1 GB/s links, k=4
        elapsed = run_collective(
            cluster, ring_allreduce(cluster, [0, 1, 2, 3], size)
        )
        expected = 2 * 3 / 4 * size / small_cluster_spec.link_bandwidth
        assert elapsed == pytest.approx(expected, rel=1e-6)

    def test_single_worker_is_free(self, small_cluster_spec):
        cluster = Cluster(small_cluster_spec)
        elapsed = run_collective(cluster, ring_allreduce(cluster, [2], 1e9))
        assert elapsed == 0.0

    def test_zero_bytes_is_free(self, small_cluster_spec):
        cluster = Cluster(small_cluster_spec)
        elapsed = run_collective(cluster, ring_allreduce(cluster, [0, 1], 0))
        assert elapsed == 0.0

    def test_duplicate_workers_rejected(self, small_cluster_spec):
        cluster = Cluster(small_cluster_spec)
        with pytest.raises(ConfigurationError):
            run_collective(cluster, ring_allreduce(cluster, [0, 0], 1e6))

    def test_empty_group_rejected(self, small_cluster_spec):
        cluster = Cluster(small_cluster_spec)
        with pytest.raises(ConfigurationError):
            run_collective(cluster, ring_allreduce(cluster, [], 1e6))

    def test_cost_grows_with_group_size(self, small_cluster_spec):
        def elapsed_for(workers):
            cluster = Cluster(small_cluster_spec)
            return run_collective(
                cluster, ring_allreduce(cluster, workers, 1e9)
            )

        assert elapsed_for([0, 1]) < elapsed_for([0, 1, 2, 3])


class TestParameterServerSync:
    def test_incast_bottleneck(self, small_cluster_spec):
        """k-1 pushes share the server's rx, then k-1 pulls share tx."""
        cluster = Cluster(small_cluster_spec)
        size = 1e9
        elapsed = run_collective(
            cluster,
            parameter_server_sync(cluster, [0, 1, 2, 3], server=0, size_bytes=size),
        )
        bandwidth = small_cluster_spec.link_bandwidth
        expected = 3 * size / bandwidth + 3 * size / bandwidth
        assert elapsed == pytest.approx(expected, rel=1e-6)

    def test_ps_slower_than_ring_for_large_groups(self, small_cluster_spec):
        """The centralized PS bottleneck the paper criticizes."""
        cluster_a = Cluster(small_cluster_spec)
        ring = run_collective(
            cluster_a, ring_allreduce(cluster_a, [0, 1, 2, 3], 1e9)
        )
        cluster_b = Cluster(small_cluster_spec)
        ps = run_collective(
            cluster_b,
            parameter_server_sync(cluster_b, [0, 1, 2, 3], 0, 1e9),
        )
        assert ps > ring


class TestBroadcastGather:
    def test_broadcast_shares_source_tx(self, small_cluster_spec):
        cluster = Cluster(small_cluster_spec)
        size = 1e9
        elapsed = run_collective(
            cluster, broadcast(cluster, 0, [1, 2, 3], size)
        )
        expected = 3 * size / small_cluster_spec.link_bandwidth
        assert elapsed == pytest.approx(expected, rel=1e-6)

    def test_gather_shares_destination_rx(self, small_cluster_spec):
        cluster = Cluster(small_cluster_spec)
        size = 1e9
        elapsed = run_collective(
            cluster, gather(cluster, [0, 1, 2], 3, size)
        )
        expected = 3 * size / small_cluster_spec.link_bandwidth
        assert elapsed == pytest.approx(expected, rel=1e-6)

    def test_source_excluded_from_destinations(self, small_cluster_spec):
        cluster = Cluster(small_cluster_spec)
        elapsed = run_collective(cluster, broadcast(cluster, 0, [0], 1e9))
        assert elapsed == 0.0
