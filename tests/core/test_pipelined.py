"""Tests for the token-level pipelined SSP/ASP runtime (Section VI)."""

import pytest

from repro.core import (
    FelaConfig,
    FelaRuntime,
    PipelinedFelaRuntime,
    SyncMode,
)
from repro.errors import ConfigurationError
from repro.stragglers import ProbabilityStraggler, RoundRobinStraggler


def make_config(partition, **kwargs):
    defaults = dict(
        partition=partition,
        total_batch=512,
        num_workers=8,
        weights=(1, 2, 8),
        conditional_subset_size=2,
        sync_mode=SyncMode.SSP,
        staleness=2,
        iterations=5,
    )
    defaults.update(kwargs)
    return FelaConfig(**defaults)


class TestConstruction:
    def test_bsp_rejected(self, vgg19_partition):
        config = make_config(
            vgg19_partition, sync_mode=SyncMode.BSP, staleness=0
        )
        with pytest.raises(ConfigurationError):
            PipelinedFelaRuntime(config)

    def test_asp_accepted(self, vgg19_partition):
        config = make_config(
            vgg19_partition, sync_mode=SyncMode.ASP, staleness=0,
            iterations=2,
        )
        assert PipelinedFelaRuntime(config).run().total_time > 0


class TestExecution:
    def test_token_conservation_per_iteration(self, vgg19_partition):
        config = make_config(vgg19_partition)
        result = PipelinedFelaRuntime(config).run()
        expected = sum(config.token_counts())
        assert len(result.records) == config.iterations
        for record in result.records:
            assert sum(record.work_by_worker) == expected

    def test_iterations_actually_overlap(self, vgg19_partition):
        """The point of pipelining: iteration k+1 starts before k ends."""
        config = make_config(vgg19_partition)
        result = PipelinedFelaRuntime(config).run()
        overlaps = [
            second.start < first.end
            for first, second in zip(result.records, result.records[1:])
        ]
        assert any(overlaps)

    def test_records_ordered_by_iteration(self, vgg19_partition):
        config = make_config(vgg19_partition)
        result = PipelinedFelaRuntime(config).run()
        assert [r.iteration for r in result.records] == list(
            range(config.iterations)
        )

    def test_no_slower_than_barrier_ssp(self, vgg19_partition):
        config = make_config(vgg19_partition)
        barrier = FelaRuntime(config).run()
        pipelined = PipelinedFelaRuntime(config).run()
        assert pipelined.total_time <= barrier.total_time * 1.02

    def test_deterministic(self, vgg19_partition):
        config = make_config(vgg19_partition, iterations=3)
        a = PipelinedFelaRuntime(config).run()
        b = PipelinedFelaRuntime(config).run()
        assert a.total_time == b.total_time


class TestStragglers:
    def test_straggler_patterns_complete(self, vgg19_partition):
        config = make_config(vgg19_partition)
        for injector in (
            RoundRobinStraggler(6.0),
            ProbabilityStraggler(0.4, 6.0),
        ):
            result = PipelinedFelaRuntime(
                config, straggler=injector
            ).run()
            expected = sum(config.token_counts())
            for record in result.records:
                assert sum(record.work_by_worker) == expected

    def test_pipelining_helps_or_matches_under_stragglers(
        self, vgg19_partition
    ):
        """Fast workers run ahead into the next iteration instead of
        idling at the tail of the current one."""
        config = make_config(vgg19_partition, iterations=6)
        injector = ProbabilityStraggler(0.3, 6.0)
        barrier = FelaRuntime(config, straggler=injector).run()
        pipelined = PipelinedFelaRuntime(config, straggler=injector).run()
        assert pipelined.total_time <= barrier.total_time * 1.02
