"""Integration tests for the Fela runtime (worker loops + sync + modes)."""

import pytest

from repro.core import FelaConfig, FelaRuntime, SyncMode
from repro.hardware import Cluster, ClusterSpec
from repro.stragglers import NoStraggler, RoundRobinStraggler


def make_runtime(partition, straggler=None, **kwargs):
    defaults = dict(
        partition=partition,
        total_batch=128,
        num_workers=8,
        weights=(1, 2, 8),
        conditional_subset_size=2,
        iterations=4,
    )
    defaults.update(kwargs)
    config = FelaConfig(**defaults)
    cluster = Cluster(ClusterSpec(num_nodes=config.num_workers))
    return FelaRuntime(config, cluster, straggler=straggler)


class TestBasicRun:
    def test_produces_result_with_records(self, vgg19_partition):
        result = make_runtime(vgg19_partition).run()
        assert result.iterations == 4
        assert len(result.records) == 4
        assert result.total_time > 0
        assert result.average_throughput > 0

    def test_iterations_are_contiguous_in_time(self, vgg19_partition):
        result = make_runtime(vgg19_partition).run()
        for first, second in zip(result.records, result.records[1:]):
            assert second.start == pytest.approx(first.end)

    def test_all_tokens_trained_each_iteration(self, vgg19_partition):
        runtime = make_runtime(vgg19_partition)
        result = runtime.run()
        expected = sum(runtime.config.token_counts())
        for record in result.records:
            assert sum(record.work_by_worker) == expected

    def test_deterministic(self, vgg19_partition):
        a = make_runtime(vgg19_partition).run()
        b = make_runtime(vgg19_partition).run()
        assert a.total_time == b.total_time
        assert a.iteration_times() == b.iteration_times()

    def test_stats_populated(self, vgg19_partition):
        result = make_runtime(vgg19_partition).run()
        assert result.stats["ts_requests"] > 0
        assert result.stats["network_bytes"] > 0
        assert len(result.stats["compute_seconds_by_worker"]) == 8

    def test_googlenet_runs(self, googlenet_partition):
        result = make_runtime(
            googlenet_partition, weights=(1, 1, 2), total_batch=256
        ).run()
        assert result.average_throughput > 0


class TestPolicyToggles:
    def test_all_toggle_combinations_complete(self, vgg19_partition):
        for ads in (True, False):
            for hf in (True, False):
                result = make_runtime(
                    vgg19_partition,
                    ads_enabled=ads,
                    hf_enabled=hf,
                    iterations=2,
                ).run()
                assert result.total_time > 0

    def test_hf_reduces_network_traffic(self, vgg19_partition):
        with_hf = make_runtime(vgg19_partition, hf_enabled=True).run()
        without_hf = make_runtime(vgg19_partition, hf_enabled=False).run()
        assert (
            with_hf.stats["bytes_fetched"]
            < without_hf.stats["bytes_fetched"]
        )

    def test_ctd_reduces_sync_traffic(self, vgg19_partition):
        narrow = make_runtime(
            vgg19_partition, conditional_subset_size=1, total_batch=1024,
            weights=(1, 2, 4),
        ).run()
        wide = make_runtime(
            vgg19_partition, conditional_subset_size=8, total_batch=1024,
            weights=(1, 2, 4),
        ).run()
        assert (
            narrow.stats["network_bytes"] < wide.stats["network_bytes"]
        )


class TestStragglerElasticity:
    def test_straggler_slows_run(self, vgg19_partition):
        base = make_runtime(vgg19_partition).run()
        slowed = make_runtime(
            vgg19_partition, straggler=RoundRobinStraggler(4.0)
        ).run()
        assert slowed.total_time > base.total_time

    def test_fela_absorbs_most_of_the_delay(self, vgg19_partition):
        """Helpers take over the sleeping worker's STB: the per-iteration
        delay must be well below the injected d."""
        d = 6.0
        base = make_runtime(vgg19_partition).run()
        slowed = make_runtime(
            vgg19_partition, straggler=RoundRobinStraggler(d)
        ).run()
        pid = (slowed.total_time - base.total_time) / slowed.iterations
        assert 0 < pid < 0.5 * d

    def test_work_shifts_away_from_straggler(self, vgg19_partition):
        runtime = make_runtime(
            vgg19_partition, straggler=RoundRobinStraggler(6.0)
        )
        result = runtime.run()
        # In iteration 0 worker 0 sleeps; it must train fewer tokens than
        # the busiest helper.
        work = result.records[0].work_by_worker
        assert work[0] < max(work)


class TestSyncModes:
    def test_ssp_no_slower_than_bsp(self, vgg19_partition):
        bsp = make_runtime(vgg19_partition, total_batch=1024,
                           weights=(1, 2, 4)).run()
        ssp = make_runtime(
            vgg19_partition,
            total_batch=1024,
            weights=(1, 2, 4),
            sync_mode=SyncMode.SSP,
            staleness=2,
        ).run()
        assert ssp.total_time <= bsp.total_time + 1e-9

    def test_asp_no_slower_than_ssp(self, vgg19_partition):
        ssp = make_runtime(
            vgg19_partition,
            total_batch=1024,
            weights=(1, 2, 4),
            sync_mode=SyncMode.SSP,
            staleness=1,
        ).run()
        asp = make_runtime(
            vgg19_partition,
            total_batch=1024,
            weights=(1, 2, 4),
            sync_mode=SyncMode.ASP,
        ).run()
        assert asp.total_time <= ssp.total_time + 1e-9

    def test_ssp_equal_iteration_counts(self, vgg19_partition):
        ssp = make_runtime(
            vgg19_partition, sync_mode=SyncMode.SSP, staleness=2
        ).run()
        assert len(ssp.records) == ssp.iterations


class TestMemoryValidation:
    def test_token_batch_exceeding_gpu_memory_rejected(
        self, vgg19_partition
    ):
        from repro.errors import CapacityError
        from repro.hardware import GpuSpec

        config = FelaConfig(
            partition=vgg19_partition,
            total_batch=128,
            num_workers=8,
            weights=(1, 2, 8),
            iterations=2,
        )
        # A 2 GB GPU cannot hold SM-1 activations for a 32-sample token.
        tiny = ClusterSpec(num_nodes=8, gpu=GpuSpec(memory_bytes=2e9))
        with pytest.raises(CapacityError):
            FelaRuntime(config, Cluster(tiny))
