"""Unit tests for the ADS / HF / CTD policy engine."""

import pytest

from repro.core import (
    FelaConfig,
    InfoMapping,
    SampleRange,
    Token,
    TokenBucket,
    TokenDistributor,
)


def make_config(partition, **kwargs):
    defaults = dict(
        partition=partition,
        total_batch=128,
        num_workers=4,
        weights=(1, 2, 4),
        iterations=5,
    )
    defaults.update(kwargs)
    return FelaConfig(**defaults)


def token(tid, level=0, home=0, deps=(), ordinal=None):
    return Token(
        tid=tid,
        level=level,
        iteration=0,
        ordinal=ordinal if ordinal is not None else tid,
        samples=SampleRange(0, 16),
        deps=tuple(deps),
        home_worker=home,
    )


@pytest.fixture()
def parts(vgg19_partition):
    return vgg19_partition


class TestADS:
    """Principle 1 (deepest level first) and Principle 2 (locality)."""

    def test_deepest_level_first(self, parts):
        config = make_config(parts, hf_enabled=False, ctd_enabled=False)
        distributor = TokenDistributor(config)
        bucket = TokenBucket(4)
        info = InfoMapping()
        bucket.add(token(1, level=0))
        info.record_completion(0, 0)
        bucket.add(token(2, level=1, deps=(0,)))
        selection = distributor.select(0, bucket, info)
        assert selection.token.tid == 2  # the T-2 beats the T-1

    def test_locality_breaks_level_ties(self, parts):
        """The paper's Section III-D worked example."""
        config = make_config(parts, hf_enabled=False, ctd_enabled=False)
        distributor = TokenDistributor(config)
        bucket = TokenBucket(4)
        info = InfoMapping()
        for dep, holder in ((2, 0), (3, 0), (4, 1), (5, 1)):
            info.record_completion(dep, holder)
        bucket.add(token(9, level=1, deps=(2, 3)))
        bucket.add(token(10, level=1, deps=(4, 5)))
        # Worker 0 holds Token_9's deps: it gets Token_9.
        assert distributor.select(0, bucket, info).token.tid == 9
        # Worker 1 holds Token_10's deps.
        assert distributor.select(1, bucket, info).token.tid == 10

    def test_equal_locality_takes_smallest_tid(self, parts):
        """Paper: "we choose the one with the smallest token ID"."""
        config = make_config(parts, hf_enabled=False, ctd_enabled=False)
        distributor = TokenDistributor(config)
        bucket = TokenBucket(4)
        info = InfoMapping()
        for dep, holder in ((3, 0), (4, 0), (2, 1), (5, 1)):
            info.record_completion(dep, holder)
        bucket.add(token(9, level=1, deps=(2, 3)))
        bucket.add(token(10, level=1, deps=(4, 5)))
        # Worker 0 holds one dep of each: tie -> Token_9.
        assert distributor.select(0, bucket, info).token.tid == 9

    def test_ads_off_is_fifo(self, parts):
        config = make_config(
            parts, ads_enabled=False, hf_enabled=False, ctd_enabled=False
        )
        distributor = TokenDistributor(config)
        bucket = TokenBucket(4)
        info = InfoMapping()
        info.record_completion(0, 0)
        bucket.add(token(1, level=1, deps=(0,)))
        bucket.add(token(5, level=0))
        bucket.add(token(3, level=0))
        # FIFO by token id, level ignored.
        assert distributor.select(0, bucket, info).token.tid == 1

    def test_empty_pool_returns_none(self, parts):
        config = make_config(parts, hf_enabled=False)
        distributor = TokenDistributor(config)
        selection = distributor.select(0, TokenBucket(4), InfoMapping())
        assert selection.token is None


class TestHF:
    def test_own_stb_first(self, parts):
        config = make_config(parts, ctd_enabled=False)
        distributor = TokenDistributor(config)
        bucket = TokenBucket(4)
        info = InfoMapping()
        bucket.add(token(1, home=0))
        bucket.add(token(2, home=1))
        selection = distributor.select(0, bucket, info)
        assert selection.token.tid == 1
        assert selection.from_own_stb

    def test_helper_targets_least_helped_slowest(self, parts):
        config = make_config(parts, ctd_enabled=False)
        distributor = TokenDistributor(config)
        bucket = TokenBucket(4)
        info = InfoMapping()
        # Worker 1 has 1 token left; worker 2 has 3 (slowest).
        bucket.add(token(1, home=1))
        for tid in (2, 3, 4):
            bucket.add(token(tid, home=2))
        selection = distributor.select(0, bucket, info)
        assert not selection.from_own_stb
        assert selection.token.home_worker == 2
        assert distributor.helper_of(0) == 2

    def test_second_helper_spreads_to_other_straggler(self, parts):
        config = make_config(parts, ctd_enabled=False)
        distributor = TokenDistributor(config)
        bucket = TokenBucket(4)
        info = InfoMapping()
        for tid in (1, 2):
            bucket.add(token(tid, home=1))
        for tid in (3, 4):
            bucket.add(token(tid, home=2))
        first = distributor.select(0, bucket, info)
        bucket.remove(first.token)
        second = distributor.select(3, bucket, info)
        # Helper 0 took from one straggler; helper 3 goes to the other.
        assert first.token.home_worker != second.token.home_worker

    def test_helper_reverts_when_own_stb_refills(self, parts):
        config = make_config(parts, ctd_enabled=False)
        distributor = TokenDistributor(config)
        bucket = TokenBucket(4)
        info = InfoMapping()
        bucket.add(token(1, home=1))
        selection = distributor.select(0, bucket, info)
        assert distributor.helper_of(0) == 1
        bucket.remove(selection.token)
        bucket.add(token(2, home=0))
        selection = distributor.select(0, bucket, info)
        assert selection.from_own_stb
        assert distributor.helper_of(0) is None

    def test_reset_iteration_clears_helpers(self, parts):
        config = make_config(parts, ctd_enabled=False)
        distributor = TokenDistributor(config)
        bucket = TokenBucket(4)
        bucket.add(token(1, home=1))
        distributor.select(0, bucket, InfoMapping())
        distributor.reset_iteration()
        assert distributor.helper_of(0) is None


class TestCTD:
    """VGG19's SM-3 (FC layers) is the communication-intensive level."""

    def test_comm_level_detected(self, parts):
        config = make_config(parts, conditional_subset_size=2)
        distributor = TokenDistributor(config)
        assert distributor.comm_levels == frozenset({2})

    def test_non_member_cannot_take_comm_tokens(self, parts):
        config = make_config(
            parts, conditional_subset_size=2, hf_enabled=False
        )
        distributor = TokenDistributor(config)
        assert not distributor.may_take(3, 2)
        assert distributor.may_take(0, 2)
        assert distributor.may_take(3, 0)

    def test_member_prioritizes_comm_tokens(self, parts):
        config = make_config(
            parts, conditional_subset_size=2, hf_enabled=False
        )
        distributor = TokenDistributor(config)
        bucket = TokenBucket(4)
        info = InfoMapping()
        info.record_completion(0, 0)
        bucket.add(token(5, level=1, deps=(0,)))  # deeper, non-comm
        info.record_completion(1, 0)
        bucket.add(token(6, level=2, deps=(1,)))  # comm level
        # Member takes the comm token first even though ADS alone would
        # pick it anyway; non-member must take the other one.
        assert distributor.select(0, bucket, info).token.tid == 6
        assert distributor.select(3, bucket, info).token.tid == 5

    def test_non_member_sees_none_when_only_comm_left(self, parts):
        config = make_config(
            parts, conditional_subset_size=2, hf_enabled=False
        )
        distributor = TokenDistributor(config)
        bucket = TokenBucket(4)
        info = InfoMapping()
        info.record_completion(0, 0)
        bucket.add(token(6, level=2, deps=(0,)))
        assert distributor.select(3, bucket, info).token is None

    def test_takeable_levels(self, parts):
        config = make_config(parts, conditional_subset_size=1)
        distributor = TokenDistributor(config)
        assert distributor.takeable_levels(0) == frozenset({0, 1, 2})
        assert distributor.takeable_levels(2) == frozenset({0, 1})

    def test_helper_respects_ctd_filter(self, parts):
        """A helper never steals comm tokens it may not train."""
        config = make_config(parts, conditional_subset_size=2)
        distributor = TokenDistributor(config)
        bucket = TokenBucket(4)
        info = InfoMapping()
        info.record_completion(0, 0)
        bucket.add(token(6, level=2, deps=(0,), home=1))
        assert distributor.select(3, bucket, info).token is None
        assert distributor.select(0, bucket, info).token.tid == 6


class TestConflicts:
    def test_contention_flag_set_between_start_finish(self, parts):
        config = make_config(parts, hf_enabled=False, ctd_enabled=False)
        distributor = TokenDistributor(config)
        bucket = TokenBucket(4)
        bucket.add(token(1))
        distributor.request_started()
        distributor.request_started()
        selection = distributor.select(0, bucket, InfoMapping())
        assert selection.contended
        distributor.request_finished()
        bucket.remove(selection.token)
        bucket.add(token(2))
        # Only the requester itself remains in flight: no contention.
        selection = distributor.select(0, bucket, InfoMapping())
        assert not selection.contended
        distributor.request_finished()

    def test_own_stb_never_contended(self, parts):
        config = make_config(parts, ctd_enabled=False)
        distributor = TokenDistributor(config)
        bucket = TokenBucket(4)
        bucket.add(token(1, home=0))
        distributor.request_started()
        selection = distributor.select(0, bucket, InfoMapping())
        assert selection.from_own_stb
        assert not selection.contended
