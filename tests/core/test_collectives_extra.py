"""Tests for the tree and hierarchical all-reduce variants."""

import pytest

from repro.core import (
    hierarchical_allreduce,
    ring_allreduce,
    tree_allreduce,
)
from repro.errors import ConfigurationError
from repro.hardware import Cluster, ClusterSpec, GpuSpec


@pytest.fixture()
def cluster_spec():
    return ClusterSpec(
        num_nodes=8,
        link_bandwidth=1e9,
        network_efficiency=1.0,
        latency=0.0,
        gpu=GpuSpec(),
    )


def run_collective(cluster, generator):
    done = []

    def proc():
        yield from generator
        done.append(cluster.env.now)

    cluster.env.process(proc())
    cluster.env.run()
    return done[0]


class TestTreeAllreduce:
    def test_two_workers_cost(self, cluster_spec):
        """k=2: one full-size transfer up, one down."""
        cluster = Cluster(cluster_spec)
        size = 1e9
        elapsed = run_collective(cluster, tree_allreduce(cluster, [0, 1], size))
        assert elapsed == pytest.approx(2 * size / 1e9, rel=1e-6)

    def test_log_rounds_for_eight_workers(self, cluster_spec):
        """k=8: 3 reduce + 3 broadcast rounds, full payload each."""
        cluster = Cluster(cluster_spec)
        size = 1e9
        elapsed = run_collective(
            cluster, tree_allreduce(cluster, list(range(8)), size)
        )
        assert elapsed == pytest.approx(6 * size / 1e9, rel=1e-6)

    def test_ring_beats_tree_on_bandwidth(self, cluster_spec):
        """2(k-1)/k < 2 log2 k for k >= 4: the classic trade-off."""
        size = 1e9
        cluster = Cluster(cluster_spec)
        ring = run_collective(
            cluster, ring_allreduce(cluster, list(range(8)), size)
        )
        cluster = Cluster(cluster_spec)
        tree = run_collective(
            cluster, tree_allreduce(cluster, list(range(8)), size)
        )
        assert ring < tree

    def test_single_worker_free(self, cluster_spec):
        cluster = Cluster(cluster_spec)
        assert run_collective(cluster, tree_allreduce(cluster, [3], 1e9)) == 0

    def test_duplicates_rejected(self, cluster_spec):
        cluster = Cluster(cluster_spec)
        with pytest.raises(ConfigurationError):
            run_collective(cluster, tree_allreduce(cluster, [0, 0], 1e9))


class TestHierarchicalAllreduce:
    def test_two_groups_cost_structure(self, cluster_spec):
        """Groups of 4 + leader ring of 2 + broadcast inside groups."""
        cluster = Cluster(cluster_spec)
        size = 1e9
        groups = [[0, 1, 2, 3], [4, 5, 6, 7]]
        elapsed = run_collective(
            cluster, hierarchical_allreduce(cluster, groups, size)
        )
        bandwidth = 1e9
        intra = 2 * 3 / 4 * size / bandwidth  # ring within each group
        leaders = 2 * 1 / 2 * size / bandwidth  # ring across 2 leaders
        fanout = 3 * size / bandwidth  # leader tx shared by 3 children
        assert elapsed == pytest.approx(intra + leaders + fanout, rel=1e-6)

    def test_single_group_matches_ring_plus_noop(self, cluster_spec):
        cluster = Cluster(cluster_spec)
        size = 1e9
        elapsed = run_collective(
            cluster, hierarchical_allreduce(cluster, [[0, 1, 2, 3]], size)
        )
        cluster2 = Cluster(cluster_spec)
        ring = run_collective(
            cluster2, ring_allreduce(cluster2, [0, 1, 2, 3], size)
        )
        # One group: phase 2 is a single-leader no-op, phase 3 re-sends.
        assert elapsed >= ring

    def test_overlapping_groups_rejected(self, cluster_spec):
        cluster = Cluster(cluster_spec)
        with pytest.raises(ConfigurationError):
            run_collective(
                cluster,
                hierarchical_allreduce(cluster, [[0, 1], [1, 2]], 1e9),
            )

    def test_empty_groups_rejected(self, cluster_spec):
        cluster = Cluster(cluster_spec)
        with pytest.raises(ConfigurationError):
            run_collective(cluster, hierarchical_allreduce(cluster, [], 1e9))
