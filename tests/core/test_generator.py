"""Unit tests for the Token Generator's dependency-driven minting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FelaConfig, TokenGenerator, split_samples
from repro.errors import SchedulingError


@pytest.fixture()
def config(vgg19_partition):
    return FelaConfig(
        partition=vgg19_partition,
        total_batch=128,
        num_workers=8,
        weights=(1, 2, 4),
        iterations=10,
    )


class TestSplitSamples:
    def test_even_split(self):
        ranges = split_samples(128, 8)
        assert len(ranges) == 8
        assert all(len(r) == 16 for r in ranges)

    def test_uneven_split_covers_everything(self):
        ranges = split_samples(100, 8)
        assert sum(len(r) for r in ranges) == 100
        assert ranges[0].start == 0
        assert ranges[-1].stop == 100
        for left, right in zip(ranges, ranges[1:]):
            assert left.stop == right.start

    def test_invalid_splits(self):
        with pytest.raises(SchedulingError):
            split_samples(4, 8)
        with pytest.raises(SchedulingError):
            split_samples(0, 1)

    @given(
        total=st.integers(min_value=1, max_value=10_000),
        parts=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100)
    def test_property_contiguous_cover(self, total, parts):
        if parts > total:
            return
        ranges = split_samples(total, parts)
        assert sum(len(r) for r in ranges) == total
        # Near-even: sizes differ by at most 1.
        sizes = [len(r) for r in ranges]
        assert max(sizes) - min(sizes) <= 1


class TestStartIteration:
    def test_t1_tokens_cover_batch(self, config):
        generator = TokenGenerator(config)
        tokens = generator.start_iteration(0)
        assert len(tokens) == config.token_counts()[0]
        assert all(t.level == 0 for t in tokens)
        assert sum(t.batch for t in tokens) == config.total_batch

    def test_t1_homes_spread_over_workers(self, config):
        generator = TokenGenerator(config)
        tokens = generator.start_iteration(0)
        homes = {t.home_worker for t in tokens}
        assert homes == set(range(config.num_workers))

    def test_unique_ids_across_iterations(self, config):
        generator = TokenGenerator(config)
        first = generator.start_iteration(0)
        for token in first:
            generator.on_completion(token.tid, 0)
        second = generator.start_iteration(1)
        ids = [t.tid for t in first] + [t.tid for t in second]
        assert len(set(ids)) == len(ids)


class TestGeneration:
    def test_t2_minted_after_ratio_completions(self, config):
        generator = TokenGenerator(config)
        tokens = generator.start_iteration(0)
        ratio = config.generation_ratio(0)
        assert ratio == 2
        # Completing the first token mints nothing.
        assert generator.on_completion(tokens[0].tid, 0) == []
        # Completing its group partner mints one T-2.
        fresh = generator.on_completion(tokens[1].tid, 0)
        assert len(fresh) == 1
        t2 = fresh[0]
        assert t2.level == 1
        assert t2.deps == (tokens[0].tid, tokens[1].tid)
        assert t2.samples.start == tokens[0].samples.start
        assert t2.samples.stop == tokens[1].samples.stop

    def test_groups_are_by_ordinal_not_completion_order(self, config):
        generator = TokenGenerator(config)
        tokens = generator.start_iteration(0)
        # Complete tokens 0 and 2 (different groups): nothing minted.
        assert generator.on_completion(tokens[0].tid, 0) == []
        assert generator.on_completion(tokens[2].tid, 0) == []
        # Token 3 completes group (2,3).
        fresh = generator.on_completion(tokens[3].tid, 0)
        assert len(fresh) == 1
        assert fresh[0].deps == (tokens[2].tid, tokens[3].tid)

    def test_full_cascade_counts(self, config):
        """Completing everything level by level yields n_2 and n_3."""
        generator = TokenGenerator(config)
        tokens = generator.start_iteration(0)
        counts = config.token_counts()
        level1 = []
        for token in tokens:
            level1.extend(generator.on_completion(token.tid, 0))
        assert len(level1) == counts[1]
        level2 = []
        for token in level1:
            level2.extend(generator.on_completion(token.tid, 0))
        assert len(level2) == counts[2]
        # Top level generates nothing further.
        for token in level2:
            assert generator.on_completion(token.tid, 0) == []
        assert generator.iteration_complete(0)

    def test_fresh_token_homed_at_majority_worker(self, config):
        generator = TokenGenerator(config)
        tokens = generator.start_iteration(0)
        generator.on_completion(tokens[0].tid, 5)
        fresh = generator.on_completion(tokens[1].tid, 5)
        assert fresh[0].home_worker == 5

    def test_majority_tie_goes_to_lowest_worker(self, config):
        generator = TokenGenerator(config)
        tokens = generator.start_iteration(0)
        generator.on_completion(tokens[0].tid, 7)
        fresh = generator.on_completion(tokens[1].tid, 2)
        assert fresh[0].home_worker == 2

    def test_unknown_completion_rejected(self, config):
        generator = TokenGenerator(config)
        with pytest.raises(SchedulingError):
            generator.on_completion(999, 0)

    def test_level_complete_tracking(self, config):
        generator = TokenGenerator(config)
        tokens = generator.start_iteration(0)
        assert not generator.level_complete(0, 0)
        for token in tokens:
            generator.on_completion(token.tid, 0)
        assert generator.level_complete(0, 0)
        assert not generator.level_complete(0, 1)

    def test_forget_iteration_clears_registry(self, config):
        generator = TokenGenerator(config)
        tokens = generator.start_iteration(0)
        for token in tokens:
            generator.on_completion(token.tid, 0)
        stale = generator.forget_iteration(0)
        assert len(stale) >= len(tokens)
        assert generator.registry == {}

    def test_samples_conserved_per_level(self, config):
        """Every level's tokens cover the batch exactly once."""
        generator = TokenGenerator(config)
        frontier = generator.start_iteration(0)
        while frontier:
            covered = sorted(
                (t.samples.start, t.samples.stop) for t in frontier
            )
            position = 0
            for start, stop in covered:
                assert start == position
                position = stop
            assert position == config.total_batch
            fresh = []
            for token in frontier:
                fresh.extend(generator.on_completion(token.tid, 0))
            frontier = fresh
