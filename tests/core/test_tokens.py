"""Unit tests for tokens, sample ranges, and the Info Mapping."""

import pytest

from repro.core import InfoMapping, SampleRange, Token
from repro.errors import SchedulingError


def make_token(tid=0, level=0, ordinal=0, samples=(0, 16), deps=(), home=0):
    return Token(
        tid=tid,
        level=level,
        iteration=0,
        ordinal=ordinal,
        samples=SampleRange(*samples),
        deps=tuple(deps),
        home_worker=home,
    )


class TestSampleRange:
    def test_len_and_contains(self):
        r = SampleRange(4, 10)
        assert len(r) == 6
        assert 4 in r and 9 in r
        assert 10 not in r and 3 not in r

    def test_invalid_ranges(self):
        with pytest.raises(SchedulingError):
            SampleRange(5, 5)
        with pytest.raises(SchedulingError):
            SampleRange(-1, 4)

    def test_merge_adjacent(self):
        merged = SampleRange(0, 8).merge(SampleRange(8, 16))
        assert (merged.start, merged.stop) == (0, 16)
        # Order-independent.
        merged2 = SampleRange(8, 16).merge(SampleRange(0, 8))
        assert (merged2.start, merged2.stop) == (0, 16)

    def test_merge_non_adjacent_rejected(self):
        with pytest.raises(SchedulingError):
            SampleRange(0, 8).merge(SampleRange(9, 16))


class TestToken:
    def test_batch_is_range_length(self):
        assert make_token(samples=(0, 32)).batch == 32

    def test_type_name_is_one_based(self):
        assert make_token(level=0).type_name == "T-1"
        assert make_token(level=2, deps=(1,)).type_name == "T-3"

    def test_level0_with_deps_rejected(self):
        with pytest.raises(SchedulingError):
            make_token(level=0, deps=(1, 2))

    def test_higher_level_needs_deps(self):
        with pytest.raises(SchedulingError):
            make_token(level=1, deps=())

    def test_negative_fields_rejected(self):
        with pytest.raises(SchedulingError):
            make_token(level=-1)
        with pytest.raises(SchedulingError):
            make_token(home=-1)


class TestInfoMapping:
    def test_assignment_then_completion(self):
        info = InfoMapping()
        info.record_assignment(1, 3)
        assert info.assignee_of(1) == 3
        info.record_completion(1, 3)
        assert info.assignee_of(1) is None
        assert info.holder_of(1) == 3
        assert 1 in info.held_by(3)

    def test_double_assignment_rejected(self):
        info = InfoMapping()
        info.record_assignment(1, 0)
        with pytest.raises(SchedulingError):
            info.record_assignment(1, 2)

    def test_completion_by_wrong_worker_rejected(self):
        info = InfoMapping()
        info.record_assignment(1, 0)
        with pytest.raises(SchedulingError):
            info.record_completion(1, 5)

    def test_double_completion_rejected(self):
        info = InfoMapping()
        info.record_completion(1, 0)
        with pytest.raises(SchedulingError):
            info.record_completion(1, 0)

    def test_forget_iteration_clears(self):
        info = InfoMapping()
        info.record_completion(1, 0)
        info.record_completion(2, 1)
        info.forget_iteration([1, 2])
        assert info.holder_of(1) is None
        assert info.held_by(0) == frozenset()


class TestLocalityScore:
    """Equation 1: |H_wid ∩ D_tid| / |D_tid|."""

    def test_full_locality(self):
        info = InfoMapping()
        info.record_completion(10, 0)
        info.record_completion(11, 0)
        token = make_token(tid=20, level=1, deps=(10, 11))
        assert info.locality_score(0, token) == 1.0

    def test_half_locality(self):
        info = InfoMapping()
        info.record_completion(10, 0)
        info.record_completion(11, 1)
        token = make_token(tid=20, level=1, deps=(10, 11))
        assert info.locality_score(0, token) == 0.5
        assert info.locality_score(1, token) == 0.5

    def test_zero_locality(self):
        info = InfoMapping()
        info.record_completion(10, 2)
        token = make_token(tid=20, level=1, deps=(10,))
        assert info.locality_score(0, token) == 0.0

    def test_level0_scores_zero_for_everyone(self):
        """T-1 distribution is sequential; locality is HF's job."""
        info = InfoMapping()
        token = make_token(tid=1, level=0, home=3)
        assert info.locality_score(3, token) == 0.0
        assert info.locality_score(0, token) == 0.0

    def test_paper_example(self):
        """Section III-D: D_9={2,3}, D_10={4,5}; worker holds {2,3}."""
        info = InfoMapping()
        info.record_completion(2, 0)
        info.record_completion(3, 0)
        info.record_completion(4, 1)
        info.record_completion(5, 1)
        token9 = make_token(tid=9, level=1, deps=(2, 3))
        token10 = make_token(tid=10, level=1, deps=(4, 5))
        assert info.locality_score(0, token9) == 1.0
        assert info.locality_score(0, token10) == 0.0
