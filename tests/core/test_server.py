"""Unit tests for the Token Server's request/report protocol."""

import pytest

from repro.core import FelaConfig, TokenServer
from repro.errors import SchedulingError
from repro.hardware import Cluster, ClusterSpec


def make_server(partition, num_workers=4, **kwargs):
    defaults = dict(
        partition=partition,
        total_batch=128,
        num_workers=num_workers,
        weights=(1, 2, 4),
        iterations=5,
    )
    defaults.update(kwargs)
    config = FelaConfig(**defaults)
    cluster = Cluster(ClusterSpec(num_nodes=num_workers, latency=0.0))
    return TokenServer(config, cluster), cluster


class TestIterationLifecycle:
    def test_begin_mints_t1_tokens(self, vgg19_partition):
        server, _ = make_server(vgg19_partition)
        server.begin_iteration(0)
        assert len(server.bucket) == server.counts[0]

    def test_iterations_must_advance_sequentially(self, vgg19_partition):
        server, _ = make_server(vgg19_partition)
        with pytest.raises(SchedulingError):
            server.begin_iteration(5)

    def test_end_before_completion_rejected(self, vgg19_partition):
        server, _ = make_server(vgg19_partition)
        server.begin_iteration(0)
        with pytest.raises(SchedulingError):
            server.end_iteration()

    def test_workers_exceeding_cluster_rejected(self, vgg19_partition):
        config = FelaConfig(
            partition=vgg19_partition,
            total_batch=128,
            num_workers=8,
            weights=(1, 2, 4),
        )
        cluster = Cluster(ClusterSpec(num_nodes=4))
        with pytest.raises(SchedulingError):
            TokenServer(config, cluster)


class TestRequestReportProtocol:
    def drive(self, server, cluster, wid_sequence):
        """Drive the whole token lifecycle with scripted workers."""
        env = cluster.env
        log = []

        def worker(wid):
            while True:
                token = yield from server.request_token(wid)
                if token is None:
                    return
                log.append((wid, token.tid, token.level))
                yield from server.report_completion(wid, token)

        server.begin_iteration(0)
        procs = [env.process(worker(wid)) for wid in wid_sequence]
        env.run(env.all_of(procs))
        return log

    def test_all_tokens_flow_through(self, vgg19_partition):
        server, cluster = make_server(vgg19_partition)
        log = self.drive(server, cluster, [0, 1, 2, 3])
        assert len(log) == sum(server.counts)
        assert server.generator.iteration_complete(0)

    def test_single_worker_consumes_everything(self, vgg19_partition):
        server, cluster = make_server(vgg19_partition)
        log = self.drive(server, cluster, [0])
        assert len(log) == sum(server.counts)
        assert all(wid == 0 for wid, _, _ in log)

    def test_level_done_events_fire_in_order(self, vgg19_partition):
        server, cluster = make_server(vgg19_partition)
        env = cluster.env
        fired = []
        server.begin_iteration(0)
        for level in range(3):
            event = server.level_done_event(level)
            event.callbacks.append(
                lambda _e, lvl=level: fired.append(lvl)
            )

        def worker(wid):
            while True:
                token = yield from server.request_token(wid)
                if token is None:
                    return
                yield from server.report_completion(wid, token)

        procs = [env.process(worker(w)) for w in range(4)]
        env.run(env.all_of(procs))
        assert fired == [0, 1, 2]

    def test_participants_after_single_worker_run(self, vgg19_partition):
        server, cluster = make_server(vgg19_partition)
        self.drive(server, cluster, [0])
        for level in range(3):
            assert server.participants(level) == [0]

    def test_ctd_keeps_comm_level_in_subset(self, vgg19_partition):
        server, cluster = make_server(
            vgg19_partition, conditional_subset_size=2
        )
        self.drive(server, cluster, [0, 1, 2, 3])
        comm_participants = server.participants(2)
        assert set(comm_participants) <= {0, 1}

    def test_tokens_by_worker_accounting(self, vgg19_partition):
        server, cluster = make_server(vgg19_partition)
        log = self.drive(server, cluster, [0, 1, 2, 3])
        assert sum(server.tokens_by_worker.values()) == len(log)

    def test_end_iteration_clears_state(self, vgg19_partition):
        server, cluster = make_server(vgg19_partition)
        self.drive(server, cluster, [0, 1, 2, 3])
        server.end_iteration()
        assert server.generator.registry == {}


class TestExhaustionAcrossOverlappingIterations:
    """``_exhausted_for`` must scan *every* open iteration.

    The pipelined runtimes keep iteration k open while k+1 starts; a
    worker that has drained iteration k must not be sent home while
    k+1 still holds tokens it may take.
    """

    def drain(self, server, cluster, wid=0):
        env = cluster.env
        pulled = []

        def worker():
            while True:
                token = yield from server.request_token(wid)
                if token is None:
                    return
                pulled.append(token)
                yield from server.report_completion(wid, token)

        env.run(env.process(worker()))
        return pulled

    def test_not_exhausted_while_next_iteration_has_tokens(
        self, vgg19_partition
    ):
        server, cluster = make_server(vgg19_partition, num_workers=1)
        server.begin_iteration(0)
        first = self.drain(server, cluster)
        assert len(first) == sum(server.counts)
        # Iteration 0 is fully assigned (and deliberately not ended):
        # with it alone open, the worker is exhausted.
        assert server._exhausted_for(0)
        server.begin_iteration(1)
        # Overlap: iteration 0 exhausted, iteration 1 untouched.  The
        # worker must keep pulling rather than go home early.
        assert not server._exhausted_for(0)
        second = self.drain(server, cluster)
        assert len(second) == sum(server.counts)
        assert {t.iteration for t in second} == {1}
        assert server._exhausted_for(0)
        server.end_iteration(0)
        server.end_iteration(1)
