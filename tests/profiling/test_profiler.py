"""Unit tests for threshold-batch-size profiling (Fig. 1 / Fig. 5)."""

import pytest

from repro.errors import ConfigurationError
from repro.models import get_model
from repro.profiling import ThroughputProfiler


class TestPaperAnchors:
    """The published threshold batch sizes, recovered exactly."""

    def test_vgg19_anchor_thresholds(self, profiler, vgg19):
        by_name = {
            p.name: t for p, t in profiler.model_thresholds(vgg19)
        }
        assert by_name["conv2"] == 16  # CONV (64,64,224,224)
        assert by_name["conv16"] == 64  # CONV (512,512,14,14)
        assert by_name["fc2"] == 2048  # FC (4096,4096)

    def test_footnote12_similar_shapes_similar_thresholds(
        self, profiler, vgg19
    ):
        """(64,64,224,224) and (128,128,112,112) both land near 16."""
        by_name = {p.name: t for p, t in profiler.model_thresholds(vgg19)}
        assert by_name["conv2"] == by_name["conv4"] == 16

    def test_thresholds_nondecreasing_block_medians(self, profiler, vgg19):
        """Deeper VGG19 blocks need larger batches (the paper's prior)."""
        thresholds = [t for _, t in profiler.model_thresholds(vgg19)]
        convs, fcs = thresholds[:16], thresholds[16:]
        assert max(convs) < min(fcs)
        assert max(convs[:8]) <= min(convs[12:])


class TestMechanics:
    def test_repository_memoizes_shapes(self, vgg19):
        profiler = ThroughputProfiler()
        profiler.model_thresholds(vgg19)
        size_after_first = profiler.repository_size
        profiler.model_thresholds(vgg19)
        assert profiler.repository_size == size_after_first
        # VGG19 has few distinct shapes (paper: 5 CONV types + FC types).
        assert size_after_first < len(vgg19.trainable_layers)

    def test_sweep_is_ascending_and_throughput_positive(self, vgg19):
        profiler = ThroughputProfiler()
        profile = profiler.profile_layer(vgg19.trainable_layers[0])
        batches = [point.batch for point in profile.sweep]
        assert batches == sorted(batches)
        assert all(point.throughput > 0 for point in profile.sweep)

    def test_threshold_is_in_sweep(self, vgg19):
        profiler = ThroughputProfiler()
        for layer in vgg19.trainable_layers:
            profile = profiler.profile_layer(layer)
            assert profile.threshold_batch in profiler.batch_sweep

    def test_threshold_reaches_saturation_fraction(self, vgg19):
        profiler = ThroughputProfiler()
        profile = profiler.profile_layer(vgg19.trainable_layers[1])
        at_threshold = next(
            p.throughput
            for p in profile.sweep
            if p.batch == profile.threshold_batch
        )
        assert at_threshold >= 0.95 * profile.max_throughput

    def test_shared_shapes_across_models(self):
        """The repository is reused across tasks (paper footnote 11)."""
        profiler = ThroughputProfiler()
        profiler.model_thresholds(get_model("vgg16"))
        size_after_vgg16 = profiler.repository_size
        profiler.model_thresholds(get_model("vgg19"))
        # VGG19 shares most shapes with VGG16: few new entries.
        assert profiler.repository_size <= size_after_vgg16 + 4


class TestValidation:
    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            ThroughputProfiler(batch_sweep=())

    def test_unsorted_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            ThroughputProfiler(batch_sweep=(4, 2, 1))

    def test_bad_saturation_fraction(self):
        with pytest.raises(ConfigurationError):
            ThroughputProfiler(saturation_fraction=0.0)
        with pytest.raises(ConfigurationError):
            ThroughputProfiler(saturation_fraction=1.5)
