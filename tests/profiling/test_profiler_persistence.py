"""JSON persistence of the throughput profiler's shape repository."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.models import get_model
from repro.profiling import ThroughputProfiler


@pytest.fixture()
def populated(vgg19):
    profiler = ThroughputProfiler()
    profiler.model_thresholds(vgg19)
    return profiler


class TestSaveLoad:
    def test_round_trip_restores_every_profile(self, populated, tmp_path):
        path = tmp_path / "repo.json"
        written = populated.save(path)
        assert written == populated.repository_size > 0

        fresh = ThroughputProfiler()
        added = fresh.load(path)
        assert added == written
        assert (
            fresh.repository_signatures()
            == populated.repository_signatures()
        )

    def test_loaded_thresholds_match_recomputed(self, populated, tmp_path):
        path = tmp_path / "repo.json"
        populated.save(path)
        fresh = ThroughputProfiler()
        fresh.load(path)
        model = get_model("vgg19")
        assert fresh.model_thresholds(model) == populated.model_thresholds(
            model
        )
        # Everything was served from the repository: no new shapes.
        assert fresh.repository_size == populated.repository_size

    def test_signatures_are_tuples_after_load(self, populated, tmp_path):
        path = tmp_path / "repo.json"
        populated.save(path)
        fresh = ThroughputProfiler()
        fresh.load(path)
        for signature in fresh.repository_signatures():
            assert isinstance(signature, tuple)

    def test_existing_profiles_win_over_file(self, populated, tmp_path):
        path = tmp_path / "repo.json"
        populated.save(path)
        assert populated.load(path) == 0  # all already present

    def test_save_is_deterministic(self, populated, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        populated.save(a)
        populated.save(b)
        assert a.read_text() == b.read_text()


class TestLoadRejections:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ThroughputProfiler().load(tmp_path / "absent.json")

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConfigurationError):
            ThroughputProfiler().load(path)

    def test_non_object_payload(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[]")
        with pytest.raises(ConfigurationError):
            ThroughputProfiler().load(path)

    def test_version_mismatch(self, populated, tmp_path):
        path = tmp_path / "repo.json"
        populated.save(path)
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            ThroughputProfiler().load(path)

    def test_sweep_mismatch(self, populated, tmp_path):
        path = tmp_path / "repo.json"
        populated.save(path)
        other = ThroughputProfiler(batch_sweep=(1, 2, 4))
        with pytest.raises(ConfigurationError):
            other.load(path)

    def test_saturation_mismatch(self, populated, tmp_path):
        path = tmp_path / "repo.json"
        populated.save(path)
        other = ThroughputProfiler(saturation_fraction=0.9)
        with pytest.raises(ConfigurationError):
            other.load(path)
