"""Analytical fast-forward: elided schedules must be bit-identical.

The run loop may skip *dead* events — empty callback lists, nothing to
re-raise — when both delay-zero lanes are drained and the future-heap
head is dead.  Skipping is pure bookkeeping elision: every test here
drives the same workload with fast-forward on (the default) and off
(via a horizonless monitor, the conservative kill switch) and requires
``repr``-exact end times, identical event counts, and identical
observable side effects.
"""

import random

import pytest

from repro.core import FelaConfig, FelaRuntime
from repro.hardware import Cluster, ClusterSpec
from repro.obs import Sampler, Tracer
from repro.sim import Environment


def _disable_fast_forward(env):
    """The documented kill switch: any monitor without a horizon."""
    env.attach_monitor(lambda now, event: None)


def _watchdog_workload(env, seed, processes=6, rounds=40):
    """any_of watchdogs: every round leaves one dead long-stop timeout."""
    rng = random.Random(seed)
    finished = []

    def watchdog(pid, delays):
        for delay in delays:
            yield env.any_of([env.timeout(delay), env.timeout(900.0)])
        finished.append((pid, repr(env.now)))

    for pid in range(processes):
        delays = [rng.uniform(0.001, 0.5) for _ in range(rounds)]
        env.process(watchdog(pid, delays))
    return finished


def _run_watchdogs(seed, fast_forward):
    env = Environment()
    if not fast_forward:
        _disable_fast_forward(env)
    finished = _watchdog_workload(env, seed)
    env.run()
    return finished, repr(env.now), env.scheduled_events, env


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 20260809])
def test_watchdogs_bit_identical_with_and_without_ff(seed):
    on, end_on, events_on, env_on = _run_watchdogs(seed, True)
    off, end_off, events_off, env_off = _run_watchdogs(seed, False)
    assert on == off
    assert end_on == end_off
    assert events_on == events_off
    # The elision actually happened — and only on the enabled run.
    assert env_on.ff_elided > 0
    assert env_on.ff_intervals > 0
    assert env_on.ff_seconds > 0.0
    assert (env_off.ff_elided, env_off.ff_intervals) == (0, 0)


def test_interrupted_timeouts_are_elided():
    """An interrupted wait leaves a dead timeout; the drain removes it
    without moving any live completion time."""
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(500.0)
        except Exception:
            log.append(("interrupted", repr(env.now)))
        yield env.timeout(1.0)
        log.append(("done", repr(env.now)))

    proc = env.process(sleeper())

    def poker():
        yield env.timeout(2.0)
        proc.interrupt("wake")

    env.process(poker())
    env.run()
    assert log == [("interrupted", "2.0"), ("done", "3.0")]
    # The dead 500 s timeout was crossed analytically, not dispatched.
    assert env.ff_elided >= 1
    assert repr(env.now) == "500.0"


def test_condition_unsubscribes_leftover_sub_events():
    """Once an any_of fires, the losing timeout carries no callbacks."""
    env = Environment()
    short = env.timeout(1.0)
    long = env.timeout(100.0)
    env.any_of([short, long])
    assert len(long.callbacks) == 1
    env.run(until=2.0)
    # The condition fired at t=1 and withdrew from the long timeout.
    assert long.callbacks == []


def test_failed_events_are_never_elided():
    """A dead-looking but failed, undefused event must still raise."""
    env = Environment()

    def failer():
        yield env.timeout(1.0)
        event = env.event()
        event.fail(RuntimeError("boom"))
        # Nobody waits on it and nobody defuses it.

    env.process(failer())
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_monitor_horizon_caps_the_drain():
    """Dead events at or beyond a monitor's next_due are dispatched so
    the monitor observes them; only strictly-earlier ones are elided."""
    env = Environment()
    seen = []
    env.attach_monitor(
        lambda now, event: seen.append(now), next_due=lambda: 50.0
    )

    def spawn_dead():
        # Interrupting the sleeper leaves dead timeouts at 10 and 60.
        def sleeper(delay):
            try:
                yield env.timeout(delay)
            except Exception:
                yield env.timeout(0.25)

        for delay in (10.0, 60.0):
            proc = env.process(sleeper(delay))
            yield env.timeout(1.0)
            proc.interrupt("cancel")
        yield env.timeout(0.5)

    env.process(spawn_dead())
    env.run()
    # The t=10 corpse (before the horizon) was elided; the t=61 corpse
    # (the second sleeper starts at t=1, so its timeout lands at 61,
    # beyond the horizon) was dispatched and hit the monitor.
    assert env.ff_elided == 1
    assert 10.0 not in seen
    assert 61.0 in seen


def _fela_run(fast_forward, sampler=None, tracer=None):
    config = FelaConfig(
        partition=_fela_run.partition,
        total_batch=128,
        num_workers=8,
        weights=(1, 2, 8),
        conditional_subset_size=2,
        iterations=4,
    )
    cluster = Cluster(ClusterSpec(num_nodes=8))
    runtime = FelaRuntime(
        config, cluster, sampler=sampler, tracer=tracer
    )
    if not fast_forward:
        _disable_fast_forward(cluster.env)
    return runtime.run()


@pytest.fixture(autouse=True)
def _partition(vgg19_partition):
    _fela_run.partition = vgg19_partition


def _comparable_stats(result):
    stats = dict(result.stats)
    stats.pop("fast_forward")  # differs by construction
    return stats


def test_fela_run_bit_identical_with_and_without_ff():
    on = _fela_run(True)
    off = _fela_run(False)
    assert repr(on.total_time) == repr(off.total_time)
    assert _comparable_stats(on) == _comparable_stats(off)
    assert on.stats["fast_forward"]["events_elided"] > 0
    assert off.stats["fast_forward"]["events_elided"] == 0


def test_fela_run_with_tracer_bit_identical():
    tracer_on, tracer_off = Tracer(), Tracer()
    on = _fela_run(True, tracer=tracer_on)
    off = _fela_run(False, tracer=tracer_off)
    assert repr(on.total_time) == repr(off.total_time)
    assert len(tracer_on.events) == len(tracer_off.events)
    assert [
        (event.name, event.start, event.end)
        for event in tracer_on.events
    ] == [
        (event.name, event.start, event.end)
        for event in tracer_off.events
    ]


def test_fela_run_with_sampler_bit_identical():
    sampler_on, sampler_off = Sampler(interval=0.5), Sampler(interval=0.5)
    on = _fela_run(True, sampler=sampler_on)
    off = _fela_run(False, sampler=sampler_off)
    assert repr(on.total_time) == repr(off.total_time)
    assert sampler_on.samples == sampler_off.samples
    # The sampler's horizon keeps fast-forward alive, not disabled.
    assert on.stats["fast_forward"]["events_elided"] > 0
