"""Unit tests for the event-loop environment."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment
from repro.sim.core import EmptySchedule


class TestRun:
    def test_run_until_time(self):
        env = Environment()
        ticks = []

        def clock(env):
            while True:
                ticks.append(env.now)
                yield env.timeout(1)

        env.process(clock(env))
        env.run(until=3.5)
        assert ticks == [0, 1, 2, 3]
        assert env.now == 3.5

    def test_run_until_past_time_rejected(self):
        env = Environment(initial_time=10)
        with pytest.raises(SimulationError):
            env.run(until=5)

    def test_run_until_event_returns_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(2)
            return "finished"

        assert env.run(env.process(proc(env))) == "finished"

    def test_run_until_never_triggered_event_deadlocks(self):
        env = Environment()
        pending = env.event()
        with pytest.raises(SimulationError, match="deadlock"):
            env.run(pending)

    def test_run_until_already_processed_event(self):
        env = Environment()
        event = env.event().succeed("v")
        env.run()
        assert env.run(event) == "v"

    def test_run_drains_queue_when_no_until(self):
        env = Environment()
        env.timeout(1)
        env.timeout(7)
        env.run()
        assert env.now == 7

    def test_initial_time(self):
        env = Environment(initial_time=100)
        env.timeout(5)
        env.run()
        assert env.now == 105


class TestStep:
    def test_step_on_empty_queue(self):
        env = Environment()
        with pytest.raises(EmptySchedule):
            env.step()

    def test_peek_returns_next_time(self):
        env = Environment()
        env.timeout(4)
        env.timeout(2)
        assert env.peek() == 2

    def test_peek_empty_is_infinity(self):
        env = Environment()
        assert env.peek() == float("inf")


class TestDeterminism:
    def test_equal_time_events_fifo(self):
        env = Environment()
        order = []

        def proc(env, name):
            yield env.timeout(1)
            order.append(name)

        for name in ("a", "b", "c"):
            env.process(proc(env, name))
        env.run()
        assert order == ["a", "b", "c"]

    def test_repeated_runs_identical(self):
        def simulate():
            env = Environment()
            log = []

            def worker(env, name, delay):
                while env.now < 10:
                    yield env.timeout(delay)
                    log.append((env.now, name))

            env.process(worker(env, "x", 2))
            env.process(worker(env, "y", 3))
            env.run(until=10)
            return log

        assert simulate() == simulate()
