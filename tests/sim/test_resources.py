"""Unit tests for Resource / Store / Container."""

import pytest

from repro.errors import SimulationError
from repro.sim import Container, Environment, FilterStore, Resource, Store


class TestResource:
    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_exclusive_use_serializes(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def user(env, res, name, hold):
            with res.request() as req:
                yield req
                log.append((name, "start", env.now))
                yield env.timeout(hold)
            log.append((name, "end", env.now))

        env.process(user(env, res, "a", 3))
        env.process(user(env, res, "b", 2))
        env.run()
        assert log == [
            ("a", "start", 0),
            ("a", "end", 3),
            ("b", "start", 3),
            ("b", "end", 5),
        ]

    def test_capacity_two_overlaps(self):
        env = Environment()
        res = Resource(env, capacity=2)
        starts = []

        def user(env):
            with res.request() as req:
                yield req
                starts.append(env.now)
                yield env.timeout(5)

        for _ in range(3):
            env.process(user(env))
        env.run()
        assert starts == [0, 0, 5]

    def test_release_of_non_holder_raises(self):
        env = Environment()
        res = Resource(env)
        req = res.request()
        env.run()
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    def test_priority_admission(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def user(env, name, priority, delay):
            yield env.timeout(delay)
            with res.request(priority=priority) as req:
                yield req
                order.append(name)
                yield env.timeout(1)

        env.process(holder(env))
        env.process(user(env, "low", 5.0, 1))
        env.process(user(env, "high", 1.0, 2))
        env.run()
        assert order == ["high", "low"]

    def test_count_and_queue_length(self):
        env = Environment()
        res = Resource(env, capacity=1)
        res.request()
        res.request()
        env.run()
        assert res.count == 1
        assert res.queue_length == 1

    def test_cancel_unfulfilled_request(self):
        env = Environment()
        res = Resource(env, capacity=1)
        first = res.request()
        second = res.request()
        env.run()
        second.cancel()
        res.release(first)
        env.run()
        assert res.count == 0
        assert res.queue_length == 0


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer(env):
            for item in "abc":
                yield store.put(item)
                yield env.timeout(1)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append((env.now, item))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert [item for _, item in got] == ["a", "b", "c"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(4)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(4, "late")]

    def test_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = []

        def producer(env):
            yield store.put(1)
            times.append(env.now)
            yield store.put(2)
            times.append(env.now)

        def consumer(env):
            yield env.timeout(5)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [0, 5]

    def test_fifo_ordering(self):
        env = Environment()
        store = Store(env)
        for item in (1, 2, 3):
            store.put(item)
        got = []

        def consumer(env):
            for _ in range(3):
                got.append((yield store.get()))

        env.process(consumer(env))
        env.run()
        assert got == [1, 2, 3]

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Store(env, capacity=0)


class TestFilterStore:
    def test_get_by_predicate(self):
        env = Environment()
        store = FilterStore(env)
        for item in (1, 2, 3, 4):
            store.put(item)
        got = []

        def consumer(env):
            got.append((yield store.get(lambda x: x % 2 == 0)))
            got.append((yield store.get(lambda x: x % 2 == 0)))
            got.append((yield store.get()))

        env.process(consumer(env))
        env.run()
        assert got == [2, 4, 1]

    def test_blocks_until_matching_item(self):
        env = Environment()
        store = FilterStore(env)
        got = []

        def consumer(env):
            got.append((yield store.get(lambda x: x == "wanted")))
            got.append(env.now)

        def producer(env):
            yield store.put("other")
            yield env.timeout(3)
            yield store.put("wanted")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == ["wanted", 3]


class TestContainer:
    def test_level_tracking(self):
        env = Environment()
        tank = Container(env, capacity=100, init=50)

        def proc(env):
            yield tank.get(20)
            assert tank.level == 30
            yield tank.put(40)
            assert tank.level == 70

        env.process(proc(env))
        env.run()

    def test_get_blocks_until_level(self):
        env = Environment()
        tank = Container(env, capacity=100, init=0)
        times = []

        def consumer(env):
            yield tank.get(30)
            times.append(env.now)

        def producer(env):
            for _ in range(3):
                yield env.timeout(1)
                yield tank.put(10)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert times == [3]

    def test_put_blocks_at_capacity(self):
        env = Environment()
        tank = Container(env, capacity=10, init=10)
        times = []

        def producer(env):
            yield tank.put(5)
            times.append(env.now)

        def consumer(env):
            yield env.timeout(2)
            yield tank.get(5)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [2]

    def test_validation(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Container(env, capacity=0)
        with pytest.raises(SimulationError):
            Container(env, capacity=10, init=20)
        tank = Container(env, capacity=10)
        with pytest.raises(SimulationError):
            tank.put(0)
        with pytest.raises(SimulationError):
            tank.get(-1)
