"""Unit tests for the event primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Environment, Event, Timeout


class TestEvent:
    def test_initial_state(self):
        env = Environment()
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_unavailable_before_trigger(self):
        env = Environment()
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value
        with pytest.raises(SimulationError):
            _ = event.ok

    def test_succeed_sets_value(self):
        env = Environment()
        event = env.event().succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_twice_raises(self):
        env = Environment()
        event = env.event().succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")  # type: ignore[arg-type]

    def test_fail_then_processed_raises_if_undefused(self):
        env = Environment()
        env.event().fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_defused_failure_does_not_propagate(self):
        env = Environment()
        event = env.event()
        event.fail(ValueError("boom"))
        event.defused()
        env.run()  # no raise

    def test_callbacks_run_in_order(self):
        env = Environment()
        event = env.event()
        order = []
        event.callbacks.append(lambda e: order.append(1))
        event.callbacks.append(lambda e: order.append(2))
        event.succeed()
        env.run()
        assert order == [1, 2]

    def test_trigger_copies_state(self):
        env = Environment()
        source = env.event().succeed("payload")
        target = env.event()
        target.trigger(source)
        assert target.value == "payload"
        assert target.ok


class TestTimeout:
    def test_fires_after_delay(self):
        env = Environment()
        env.timeout(5)
        env.run()
        assert env.now == 5

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_carries_value(self):
        env = Environment()
        timeout = env.timeout(1, value="v")
        env.run()
        assert timeout.value == "v"

    def test_zero_delay_fires_now(self):
        env = Environment()
        env.timeout(0)
        env.run()
        assert env.now == 0

    def test_delay_property(self):
        env = Environment()
        assert Timeout(env, 2.5).delay == 2.5


class TestConditions:
    def test_all_of_waits_for_all(self):
        env = Environment()

        def proc(env):
            t1 = env.timeout(1, "a")
            t2 = env.timeout(3, "b")
            result = yield AllOf(env, [t1, t2])
            return (env.now, result.values())

        p = env.process(proc(env))
        assert env.run(p) == (3, ["a", "b"])

    def test_any_of_fires_on_first(self):
        env = Environment()

        def proc(env):
            t1 = env.timeout(1, "fast")
            t2 = env.timeout(3, "slow")
            result = yield AnyOf(env, [t1, t2])
            return (env.now, result.values())

        p = env.process(proc(env))
        assert env.run(p) == (1, ["fast"])

    def test_empty_all_of_is_immediate(self):
        env = Environment()

        def proc(env):
            yield AllOf(env, [])
            return env.now

        assert env.run(env.process(proc(env))) == 0

    def test_operator_composition(self):
        env = Environment()

        def proc(env):
            result = yield env.timeout(1, "x") & env.timeout(2, "y")
            return sorted(result.values())

        assert env.run(env.process(proc(env))) == ["x", "y"]

    def test_or_operator(self):
        env = Environment()

        def proc(env):
            result = yield env.timeout(1, "x") | env.timeout(5, "y")
            return result.values()

        assert env.run(env.process(proc(env))) == ["x"]

    def test_condition_value_mapping(self):
        env = Environment()
        collected = {}

        def proc(env):
            t1 = env.timeout(1, "a")
            t2 = env.timeout(1, "b")
            result = yield AllOf(env, [t1, t2])
            collected["dict"] = result.todict()
            collected["contains"] = t1 in result
            collected["item"] = result[t2]
            yield env.timeout(0)

        env.process(proc(env))
        env.run()
        assert collected["contains"] is True
        assert collected["item"] == "b"
        assert len(collected["dict"]) == 2

    def test_failed_subevent_fails_condition(self):
        env = Environment()

        def proc(env):
            bad = env.event()
            bad.fail(RuntimeError("nope"))
            try:
                yield AllOf(env, [env.timeout(1), bad])
            except RuntimeError as exc:
                return str(exc)

        assert env.run(env.process(proc(env))) == "nope"

    def test_cross_environment_events_rejected(self):
        env1, env2 = Environment(), Environment()
        with pytest.raises(SimulationError):
            AllOf(env1, [env1.event(), env2.event()])
