"""Unit tests for generator-based processes."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt


class TestProcessBasics:
    def test_process_runs_and_returns(self):
        env = Environment()

        def proc(env):
            yield env.timeout(2)
            return "done"

        assert env.run(env.process(proc(env))) == "done"
        assert env.now == 2

    def test_non_generator_rejected(self):
        env = Environment()

        def not_a_generator():
            return 42

        with pytest.raises(SimulationError):
            env.process(not_a_generator())  # type: ignore[arg-type]

    def test_yielding_non_event_raises_into_process(self):
        env = Environment()

        def proc(env):
            try:
                yield 42  # type: ignore[misc]
            except SimulationError:
                return "caught"

        assert env.run(env.process(proc(env))) == "caught"

    def test_process_is_alive_until_done(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_exception_propagates_to_waiter(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1)
            raise ValueError("inner")

        def waiter(env, target):
            try:
                yield target
            except ValueError as exc:
                return f"saw {exc}"

        target = env.process(failing(env))
        w = env.process(waiter(env, target))
        assert env.run(w) == "saw inner"

    def test_unhandled_process_exception_surfaces(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1)
            raise ValueError("unhandled")

        env.process(failing(env))
        with pytest.raises(ValueError, match="unhandled"):
            env.run()

    def test_processes_wait_for_each_other(self):
        env = Environment()

        def child(env):
            yield env.timeout(3)
            return "child-value"

        def parent(env):
            value = yield env.process(child(env))
            return (env.now, value)

        assert env.run(env.process(parent(env))) == (3, "child-value")

    def test_already_processed_event_feeds_immediately(self):
        env = Environment()

        def proc(env):
            done = env.event().succeed("early")
            yield env.timeout(1)
            value = yield done  # processed long ago
            return value

        assert env.run(env.process(proc(env))) == "early"

    def test_name_reflects_generator(self):
        env = Environment()

        def my_process(env):
            yield env.timeout(0)

        assert env.process(my_process(env)).name == "my_process"


class TestInterrupts:
    def test_interrupt_delivers_cause(self):
        env = Environment()

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, env.now)

        def waker(env, target):
            yield env.timeout(5)
            target.interrupt("cause!")

        target = env.process(sleeper(env))
        env.process(waker(env, target))
        assert env.run(target) == ("interrupted", "cause!", 5)

    def test_interrupted_process_can_continue(self):
        env = Environment()

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(10)
            return env.now

        def waker(env, target):
            yield env.timeout(5)
            target.interrupt()

        target = env.process(sleeper(env))
        env.process(waker(env, target))
        assert env.run(target) == 15

    def test_interrupting_terminated_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_self_interrupt_rejected(self):
        env = Environment()
        failures = []

        def proc(env):
            try:
                env.active_process.interrupt()
            except SimulationError:
                failures.append(True)
            yield env.timeout(0)

        env.process(proc(env))
        env.run()
        assert failures == [True]

    def test_interrupt_unsubscribes_from_target(self):
        """After an interrupt, the stale wait target must not re-resume."""
        env = Environment()
        log = []

        def sleeper(env):
            try:
                yield env.timeout(10)
                log.append("slept-through")
            except Interrupt:
                log.append("interrupted")
            yield env.timeout(20)
            log.append("second-sleep-done")

        def waker(env, target):
            yield env.timeout(1)
            target.interrupt()

        target = env.process(sleeper(env))
        env.process(waker(env, target))
        env.run()
        assert log == ["interrupted", "second-sleep-done"]
        assert env.now == 21
