"""Property-based tests (hypothesis) for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Container, Environment, Resource, Store


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
def test_clock_reaches_max_delay(delays):
    """The environment ends at the latest scheduled timeout."""
    env = Environment()
    for delay in delays:
        env.timeout(delay)
    env.run()
    assert env.now == max(delays)


@given(
    delays=st.lists(
        st.integers(min_value=0, max_value=100), min_size=1, max_size=30
    )
)
def test_timeout_completion_order_is_sorted(delays):
    """Events are processed in non-decreasing time order."""
    env = Environment()
    seen = []

    def waiter(env, delay):
        yield env.timeout(delay)
        seen.append(env.now)

    for delay in delays:
        env.process(waiter(env, delay))
    env.run()
    assert seen == sorted(seen)
    assert sorted(seen) == sorted(float(d) for d in delays)


@given(
    holds=st.lists(
        st.integers(min_value=1, max_value=10), min_size=1, max_size=20
    ),
    capacity=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=50)
def test_resource_never_exceeds_capacity(holds, capacity):
    """At no simulated instant do more than ``capacity`` users hold it."""
    env = Environment()
    res = Resource(env, capacity=capacity)
    active = [0]
    max_active = [0]

    def user(env, hold):
        with res.request() as req:
            yield req
            active[0] += 1
            max_active[0] = max(max_active[0], active[0])
            yield env.timeout(hold)
            active[0] -= 1

    for hold in holds:
        env.process(user(env, hold))
    env.run()
    assert max_active[0] <= capacity
    assert active[0] == 0


@given(
    holds=st.lists(
        st.integers(min_value=1, max_value=10), min_size=1, max_size=20
    )
)
@settings(max_examples=50)
def test_unit_resource_total_time_is_sum_of_holds(holds):
    """A capacity-1 resource serializes: makespan = sum of holds."""
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env, hold):
        with res.request() as req:
            yield req
            yield env.timeout(hold)

    for hold in holds:
        env.process(user(env, hold))
    env.run()
    assert env.now == sum(holds)


@given(items=st.lists(st.integers(), min_size=1, max_size=50))
def test_store_preserves_fifo_order(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            received.append((yield store.get()))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items


@given(
    puts=st.lists(
        st.floats(min_value=0.1, max_value=100), min_size=1, max_size=30
    )
)
@settings(max_examples=50)
def test_container_conserves_quantity(puts):
    """Total put == final level when nothing is taken out."""
    env = Environment()
    tank = Container(env, capacity=sum(puts) + 1)

    def producer(env):
        for amount in puts:
            yield tank.put(amount)

    env.process(producer(env))
    env.run()
    assert abs(tank.level - sum(puts)) < 1e-9
