"""Differential proof: the calendar queue pops like one global heap.

The kernel replaced its single binary heap with
:class:`repro.sim.calendar.CalendarQueue` (two delay-zero FIFO lanes +
an overflow heap).  Determinism pins only hold if the pop order is
*identical* to the old heap under the ``(time, priority, seq)`` tuple
order — including duplicate timestamps, equal priorities, and entries
whose payload was cancelled after scheduling (the kernel cancels by
emptying callbacks; the queue entry itself always pops).  These tests
drive both structures through the same randomized, seeded schedules and
require equality on every popped tuple.
"""

import heapq
import random

import pytest

from repro.sim.calendar import CalendarQueue


def _drive(seed: int, ops: int) -> None:
    """Random interleaving of schedules/cancels/pops, mirrored into a
    reference heap; asserts identical pop order throughout."""
    rng = random.Random(seed)
    queue = CalendarQueue()
    reference: list = []
    now = 0.0
    seq = 0
    cancelled: set[int] = set()
    live: list[int] = []  # seqs still pending, for cancel picks

    for _ in range(ops):
        action = rng.random()
        if action < 0.55:
            # Schedule.  Coarse delay grid forces duplicate timestamps;
            # immediate entries use both priorities, future entries get
            # a random priority too (Environment.schedule allows it).
            delay = rng.choice((0.0, 0.0, 0.0, 0.5, 0.5, 1.0, 2.5))
            priority = rng.choice((0, 1))
            entry = (now + delay, priority, seq, None)
            queue.push(entry, delay == 0.0)
            heapq.heappush(reference, entry)
            live.append(seq)
            seq += 1
        elif action < 0.65:
            # Cancel: the kernel's model — mark the payload dead, leave
            # the entry queued.  Both sides must still pop it in place.
            if live:
                cancelled.add(live[rng.randrange(len(live))])
        else:
            if reference:
                expected = heapq.heappop(reference)
                got = queue.pop()
                assert got == expected
                now = max(now, got[0])
                live.remove(got[2])
                cancelled.discard(got[2])
    # Drain: every remaining entry pops in reference order.
    while reference:
        assert queue.pop() == heapq.heappop(reference)
    assert len(queue) == 0
    with pytest.raises(IndexError):
        queue.pop()


@pytest.mark.parametrize("seed", [0, 1, 7, 20260809, 424242])
def test_randomized_pop_order_matches_reference_heap(seed):
    _drive(seed, ops=4000)


def test_duplicate_time_and_priority_break_ties_by_sequence():
    queue = CalendarQueue()
    entries = [(1.0, 1, seq, None) for seq in range(50)]
    for entry in entries:
        queue.push(entry)  # via the heap
    assert [queue.pop() for _ in entries] == entries

    for entry in entries:
        queue.push(entry, True)  # via the NORMAL lane
    assert [queue.pop() for _ in entries] == entries


def test_urgent_lane_wins_at_equal_time_and_lower_seq_wins_within():
    queue = CalendarQueue()
    queue.push((1.0, 1, 0, "normal-first"), True)
    queue.push((1.0, 0, 1, "urgent-later"), True)
    queue.push((1.0, 1, 2, "normal-later"), True)
    assert [queue.pop()[3] for _ in range(3)] == [
        "urgent-later", "normal-first", "normal-later",
    ]


def test_non_monotone_immediate_append_falls_back_to_the_heap():
    """A lane append that would break head-is-min routes to the heap
    and the global order survives."""
    queue = CalendarQueue()
    queue.push((5.0, 1, 1, None), True)
    queue.push((3.0, 1, 2, None), True)  # time went backwards
    assert queue.peek_time() == 3.0
    assert queue.pop() == (3.0, 1, 2, None)
    assert queue.pop() == (5.0, 1, 1, None)


def test_peek_len_bool_and_repr():
    queue = CalendarQueue()
    assert queue.peek_time() == float("inf")
    assert not queue
    queue.push((2.0, 1, 0, None))
    queue.push((1.0, 0, 1, None), True)
    queue.push((1.0, 1, 2, None), True)
    assert queue.peek_time() == 1.0
    assert len(queue) == 3
    assert bool(queue)
    assert "urgent=1" in repr(queue) and "future=1" in repr(queue)


# -- end-to-end pin: traced AND sampled simultaneously ------------------------


@pytest.mark.parametrize(
    "name",
    sorted(
        __import__(
            "tests.faults.test_zero_perturbation", fromlist=["CASES"]
        ).CASES
    ),
)
def test_pins_hold_with_tracer_and_sampler_attached(name, vgg19_partition):
    """The five pinned scenarios, run over the calendar queue with both
    observers attached at once, stay bit-identical (traced-only and
    sampled-only variants are pinned in their own suites)."""
    from repro.hardware import Cluster, ClusterSpec
    from repro.obs import Tracer
    from repro.obs.timeseries import Sampler
    from tests.faults.test_zero_perturbation import CASES, PINNED, _config

    cls, make_straggler, kwargs = CASES[name]
    cluster = Cluster(ClusterSpec(num_nodes=8))
    runtime = cls(
        _config(vgg19_partition, **kwargs),
        cluster,
        straggler=make_straggler(),
        tracer=Tracer(),
        sampler=Sampler(interval=0.5),
    )
    assert repr(runtime.run().total_time) == PINNED[name]
