"""Unit tests for the straggler injectors."""

import pytest

from repro.errors import ConfigurationError
from repro.stragglers import (
    NoStraggler,
    ProbabilityStraggler,
    RoundRobinStraggler,
    TransientStraggler,
)


class TestNoStraggler:
    def test_all_zero(self):
        assert NoStraggler().delays(3, 8) == [0.0] * 8


class TestRoundRobin:
    def test_rotates_through_workers(self):
        injector = RoundRobinStraggler(5.0)
        for iteration in range(16):
            delays = injector.delays(iteration, 8)
            assert delays[iteration % 8] == 5.0
            assert sum(1 for d in delays if d > 0) == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            RoundRobinStraggler(-1.0)


class TestProbability:
    def test_deterministic_per_seed_and_iteration(self):
        a = ProbabilityStraggler(0.3, 6.0, seed=7)
        b = ProbabilityStraggler(0.3, 6.0, seed=7)
        for iteration in range(10):
            assert a.delays(iteration, 8) == b.delays(iteration, 8)

    def test_different_iterations_differ(self):
        injector = ProbabilityStraggler(0.5, 6.0, seed=1)
        patterns = {tuple(injector.delays(i, 8)) for i in range(20)}
        assert len(patterns) > 1

    def test_extreme_probabilities(self):
        assert ProbabilityStraggler(0.0, 6.0).delays(0, 8) == [0.0] * 8
        assert ProbabilityStraggler(1.0, 6.0).delays(0, 8) == [6.0] * 8

    def test_empirical_rate_close_to_p(self):
        injector = ProbabilityStraggler(0.3, 1.0, seed=3)
        hits = sum(
            sum(1 for d in injector.delays(i, 8) if d > 0)
            for i in range(500)
        )
        rate = hits / (500 * 8)
        assert rate == pytest.approx(0.3, abs=0.03)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProbabilityStraggler(1.5, 6.0)
        with pytest.raises(ConfigurationError):
            ProbabilityStraggler(0.3, -1.0)


class TestTransient:
    def test_hits_exact_count(self):
        injector = TransientStraggler(4.0, hits=3)
        delays = injector.delays(0, 8)
        assert sum(1 for d in delays if d > 0) == 3

    def test_afflicted_set_switches_between_epochs(self):
        injector = TransientStraggler(4.0, hits=2, persistence=1, seed=0)
        sets = {
            tuple(i for i, d in enumerate(injector.delays(k, 8)) if d > 0)
            for k in range(20)
        }
        assert len(sets) > 1

    def test_persistence_holds_set_constant(self):
        injector = TransientStraggler(4.0, hits=2, persistence=5, seed=0)
        first = injector.delays(0, 8)
        for k in range(1, 5):
            assert injector.delays(k, 8) == first

    def test_hits_capped_at_workers(self):
        injector = TransientStraggler(4.0, hits=100)
        delays = injector.delays(0, 4)
        assert sum(1 for d in delays if d > 0) == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TransientStraggler(-1.0)
        with pytest.raises(ConfigurationError):
            TransientStraggler(1.0, hits=-1)
        with pytest.raises(ConfigurationError):
            TransientStraggler(1.0, persistence=0)
