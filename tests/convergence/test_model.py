"""Tests for the stale-gradient convergence model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.convergence import ConvergenceModel
from repro.errors import ConfigurationError


class TestContraction:
    def test_bsp_contraction_is_rho(self):
        model = ConvergenceModel(rho_bsp=0.9)
        assert model.contraction(0.0) == pytest.approx(0.9)

    def test_staleness_slows_contraction(self):
        model = ConvergenceModel()
        assert model.contraction(2.0) > model.contraction(0.0)
        assert model.contraction(8.0) > model.contraction(2.0)

    def test_contraction_stays_below_one(self):
        model = ConvergenceModel()
        for age in (0, 1, 10, 1000):
            assert 0 < model.contraction(age) < 1

    def test_zero_beta_ignores_staleness(self):
        model = ConvergenceModel(staleness_beta=0.0)
        assert model.contraction(100.0) == model.contraction(0.0)

    def test_mean_age_is_half_bound(self):
        model = ConvergenceModel()
        assert model.mean_age(4) == 2.0
        assert model.mean_age(0) == 0.0


class TestTrajectories:
    def test_excess_loss_decays(self):
        model = ConvergenceModel(rho_bsp=0.9)
        assert model.excess_loss(0) == 1.0
        assert model.excess_loss(10) == pytest.approx(0.9**10)

    def test_iterations_to_target_inverts_decay(self):
        model = ConvergenceModel(rho_bsp=0.9)
        iterations = model.iterations_to_target(0.01)
        assert model.excess_loss(iterations) <= 0.01
        assert model.excess_loss(iterations - 1) > 0.01

    def test_stale_training_needs_more_iterations(self):
        model = ConvergenceModel()
        bsp = model.iterations_to_target(0.01, mean_age=0.0)
        ssp = model.iterations_to_target(0.01, mean_age=2.0)
        assert ssp > bsp

    def test_time_to_target_trade_off(self):
        """SSP wins wall-clock only while its per-iteration speedup
        exceeds its iteration-count inflation — the paper's trade-off."""
        model = ConvergenceModel()
        bsp_time = model.time_to_target(0.01, seconds_per_iteration=1.0)
        # Mild staleness + 20% faster iterations: can win.
        mild = model.time_to_target(
            0.01, seconds_per_iteration=0.8, mean_age=0.5
        )
        # Heavy staleness + the same 20% speedup: loses.
        heavy = model.time_to_target(
            0.01, seconds_per_iteration=0.8, mean_age=8.0
        )
        assert mild < bsp_time < heavy

    @given(
        age=st.floats(min_value=0.0, max_value=50.0),
        target=st.floats(min_value=1e-6, max_value=0.5),
    )
    @settings(max_examples=100)
    def test_property_target_reached(self, age, target):
        model = ConvergenceModel()
        iterations = model.iterations_to_target(target, mean_age=age)
        assert model.excess_loss(iterations, mean_age=age) <= target + 1e-12


class TestValidation:
    def test_bad_rho(self):
        with pytest.raises(ConfigurationError):
            ConvergenceModel(rho_bsp=1.0)
        with pytest.raises(ConfigurationError):
            ConvergenceModel(rho_bsp=0.0)

    def test_bad_beta(self):
        with pytest.raises(ConfigurationError):
            ConvergenceModel(staleness_beta=-1)

    def test_bad_target(self):
        model = ConvergenceModel()
        with pytest.raises(ConfigurationError):
            model.iterations_to_target(2.0)
        with pytest.raises(ConfigurationError):
            model.iterations_to_target(0.0)

    def test_bad_inputs(self):
        model = ConvergenceModel()
        with pytest.raises(ConfigurationError):
            model.contraction(-1.0)
        with pytest.raises(ConfigurationError):
            model.excess_loss(-1)
        with pytest.raises(ConfigurationError):
            model.time_to_target(0.1, 0.0)
