"""End-to-end shape tests: the qualitative claims of the evaluation.

These are the reproduction's acceptance tests.  Absolute numbers are not
expected to match the paper (our substrate is an analytic simulator, not
the authors' testbed), but *who wins, by roughly what factor, and where
the crossovers fall* must hold.  Iteration counts are kept small; every
simulation is deterministic, so small runs are stable.
"""

import pytest

from repro.harness import ExperimentRunner, ExperimentSpec
from repro.metrics import per_iteration_delay
from repro.stragglers import ProbabilityStraggler, RoundRobinStraggler


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


def spec(model, batch, iterations=4):
    return ExperimentSpec(
        model_name=model, total_batch=batch, iterations=iterations
    )


class TestNonStragglerOrdering:
    """Fig. 8: Fela > HP/DP > MP on VGG19 across the batch axis."""

    @pytest.mark.parametrize("batch", [128, 512, 1024])
    def test_vgg19_fela_beats_all_baselines(self, runner, batch):
        results = runner.run_all(spec("vgg19", batch))
        fela = results["fela"].average_throughput
        for kind in ("dp", "mp", "hp"):
            assert fela > results[kind].average_throughput, (
                f"Fela must beat {kind} at batch {batch}"
            )

    @pytest.mark.parametrize("batch", [128, 512, 1024])
    def test_vgg19_mp_is_worst(self, runner, batch):
        results = runner.run_all(spec("vgg19", batch))
        mp = results["mp"].average_throughput
        for kind in ("fela", "dp", "hp"):
            assert results[kind].average_throughput > mp

    def test_hp_beats_dp_small_batch_not_large(self, runner):
        """The Fig. 8 crossover: HP wins small, DP catches up large."""
        small = runner.run_all(spec("vgg19", 128), kinds=("dp", "hp"))
        assert (
            small["hp"].average_throughput
            > small["dp"].average_throughput
        )
        large = runner.run_all(spec("vgg19", 2048), kinds=("dp", "hp"))
        ratio_large = (
            large["hp"].average_throughput
            / large["dp"].average_throughput
        )
        ratio_small = (
            small["hp"].average_throughput
            / small["dp"].average_throughput
        )
        assert ratio_large < ratio_small  # HP's edge shrinks with batch

    def test_vgg19_speedup_magnitudes_in_paper_ballpark(self, runner):
        """Paper: Fela/DP up to 3.23x, Fela/MP 5.18-8.12x (VGG19)."""
        results = runner.run_all(spec("vgg19", 128))
        fela = results["fela"].average_throughput
        assert 1.05 < fela / results["dp"].average_throughput < 4.0
        assert 3.0 < fela / results["mp"].average_throughput < 15.0
        assert 1.0 < fela / results["hp"].average_throughput < 2.0

    def test_googlenet_fela_never_loses(self, runner):
        results = runner.run_all(spec("googlenet", 512))
        fela = results["fela"].average_throughput
        for kind in ("dp", "mp", "hp"):
            assert fela >= 0.99 * results[kind].average_throughput


class TestStragglerScenarios:
    """Figs. 9-10: Fela's AT stays highest; its PID undercuts DP/HP."""

    def test_round_robin_fela_smallest_pid(self, runner):
        workload = spec("vgg19", 256, iterations=6)
        base = {
            kind: runner.run(kind, workload)
            for kind in ("fela", "dp", "hp")
        }
        injector = RoundRobinStraggler(6.0)
        slowed = {
            kind: runner.run(kind, workload, injector)
            for kind in ("fela", "dp", "hp")
        }
        pid = {
            kind: per_iteration_delay(slowed[kind], base[kind])
            for kind in slowed
        }
        assert pid["fela"] < pid["dp"]
        assert pid["fela"] < pid["hp"]

    def test_round_robin_fela_highest_at(self, runner):
        workload = spec("vgg19", 256, iterations=6)
        injector = RoundRobinStraggler(6.0)
        results = {
            kind: runner.run(kind, workload, injector)
            for kind in ("fela", "dp", "mp", "hp")
        }
        fela = results["fela"].average_throughput
        for kind in ("dp", "mp", "hp"):
            assert fela > results[kind].average_throughput

    def test_probability_pid_monotone_in_p(self, runner):
        workload = spec("vgg19", 256, iterations=6)
        base = runner.run("fela", workload)
        pids = []
        for p in (0.1, 0.3, 0.5):
            slowed = runner.run(
                "fela", workload, ProbabilityStraggler(p, 6.0)
            )
            pids.append(per_iteration_delay(slowed, base))
        assert pids[0] < pids[1] < pids[2]

    def test_dp_pays_full_delay_fela_does_not(self, runner):
        """DP under BSP eats ~d per iteration; Fela absorbs most of it."""
        d = 6.0
        workload = spec("vgg19", 256, iterations=6)
        injector = RoundRobinStraggler(d)
        dp_pid = per_iteration_delay(
            runner.run("dp", workload, injector),
            runner.run("dp", workload),
        )
        fela_pid = per_iteration_delay(
            runner.run("fela", workload, injector),
            runner.run("fela", workload),
        )
        assert dp_pid == pytest.approx(d, rel=0.1)
        assert fela_pid < 0.5 * d

    def test_googlenet_straggler_ordering(self, runner):
        workload = spec("googlenet", 1024, iterations=6)
        injector = RoundRobinStraggler(3.0)
        results = {
            kind: runner.run(kind, workload, injector)
            for kind in ("fela", "dp")
        }
        assert (
            results["fela"].average_throughput
            > results["dp"].average_throughput
        )


class TestAblationDirections:
    """Table III: each policy helps (direction, not magnitude)."""

    def test_hf_policy_helps(self, runner):
        workload = spec("vgg19", 256, iterations=4)
        with_hf = runner.run("fela", workload)
        without_hf = runner.run("fela", workload, hf_enabled=False)
        assert (
            with_hf.average_throughput > without_hf.average_throughput
        )

    def test_ads_policy_never_hurts(self, runner):
        workload = spec("vgg19", 256, iterations=4)
        with_ads = runner.run("fela", workload)
        without_ads = runner.run("fela", workload, ads_enabled=False)
        assert (
            with_ads.average_throughput
            >= 0.99 * without_ads.average_throughput
        )

    def test_tuning_gap_is_material(self, runner):
        """Fig. 6(b): the best configuration saves real time."""
        tuning = runner.tuning(spec("vgg19", 256))
        assert tuning.overall_gap() > 0.05
