"""Cross-cutting coverage: smaller behaviours not owned by one module."""

import pytest

from repro.core import FelaConfig, FelaRuntime
from repro.hardware import Cluster, ClusterSpec
from repro.models import build_pagerank, get_model
from repro.partition import partition_by_counts
from repro.sim import Environment, PriorityResource


class TestPriorityResource:
    def test_behaves_like_resource_with_priorities(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(5)

        def user(env, name, priority):
            yield env.timeout(1)
            with res.request(priority=priority) as req:
                yield req
                order.append(name)
                yield env.timeout(1)

        env.process(holder(env))
        env.process(user(env, "bg", 10.0))
        env.process(user(env, "fg", 0.0))
        env.run()
        assert order == ["fg", "bg"]


class TestPageRankUnderFela:
    def test_pagerank_end_to_end(self):
        pr = build_pagerank(nodes=1_000_000, partitions=4)
        partition = partition_by_counts(pr, [2, 2])
        config = FelaConfig(
            partition=partition,
            total_batch=100_000,
            num_workers=8,
            weights=(1, 1),
            conditional_subset_size=2,
            iterations=2,
        )
        result = FelaRuntime(config).run()
        assert result.average_throughput > 0
        assert result.stats["network_bytes"] > 0


class TestClusterIntegration:
    def test_pending_delay_rolls_into_next_compute_only(self):
        spec = ClusterSpec(num_nodes=2, latency=0.0)
        cluster = Cluster(spec)
        cluster[0].add_delay(2.0)
        cluster[0].add_delay(3.0)  # delays accumulate
        times = []

        def jobs(node):
            yield from node.compute(1.0)
            times.append(cluster.env.now)
            yield from node.compute(1.0)
            times.append(cluster.env.now)

        cluster.env.process(jobs(cluster[0]))
        cluster.env.run()
        assert times == [6.0, 7.0]  # 1+5 then 1

    def test_repr_smoke(self):
        cluster = Cluster(ClusterSpec(num_nodes=2))
        assert "Cluster" in repr(cluster)
        assert "Node" in repr(cluster[0])


class TestRuntimeOverlapClaim:
    def test_sync_overlaps_training(self, vgg19_partition):
        """Paper III-A: "While the worker is synchronizing ... its
        Trainer is not blocked": SM-1's all-reduce must start (and
        usually finish) before the iteration's training ends."""
        windows = []

        class RecordingRuntime(FelaRuntime):
            def _sync_level(self, iteration, level):
                begin = self.cluster.env.now
                yield from super()._sync_level(iteration, level)
                windows.append(
                    (iteration, level, begin, self.cluster.env.now)
                )

        config = FelaConfig(
            partition=vgg19_partition,
            total_batch=1024,
            num_workers=8,
            weights=(1, 2, 4),
            conditional_subset_size=8,
            iterations=1,
        )
        result = RecordingRuntime(config).run()
        iteration_end = result.records[0].end
        sm1_end = next(
            end for it, level, _begin, end in windows
            if it == 0 and level == 0
        )
        assert sm1_end < iteration_end  # SM-1 synced mid-iteration

    def test_fela_name_and_model_recorded(self, vgg19_partition):
        config = FelaConfig(
            partition=vgg19_partition,
            total_batch=128,
            num_workers=8,
            weights=(1, 2, 8),
            iterations=1,
        )
        result = FelaRuntime(config).run()
        assert result.runtime_name == "fela"
        assert result.model_name == "vgg19"


class TestCliFigures:
    def test_figures_list(self, capsys):
        from repro.cli import main

        assert main(["figures", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig8-vgg19" in out
        assert "ext-pipelined" in out

    def test_figures_without_ids_errors(self, capsys):
        from repro.cli import main

        assert main(["figures"]) == 2
        assert "artifact ids" in capsys.readouterr().err

    def test_figures_generates(self, capsys):
        from repro.cli import main

        assert main(["figures", "table2"]) == 0
        assert "Fela" in capsys.readouterr().out
