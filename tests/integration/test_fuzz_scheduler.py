"""Randomized scheduler robustness: any valid configuration completes.

The token machinery has the classic failure modes of work-stealing
schedulers — deadlock (everyone waiting for tokens that will never be
generated), double-assignment, lost tokens.  These tests sweep randomized
configurations, policies, and straggler patterns and assert the global
invariants: the run completes, every token of every iteration is trained
exactly once, and the simulation stays deterministic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FelaConfig, FelaRuntime, SyncMode
from repro.hardware import Cluster, ClusterSpec
from repro.models import get_model
from repro.partition import paper_partition
from repro.stragglers import ProbabilityStraggler, TransientStraggler

# Session-level partition (building VGG19 repeatedly is the slow part).
_PARTITION = paper_partition(get_model("vgg19"))

weight_choices = st.sampled_from(
    [(1, 1, 1), (1, 1, 2), (1, 1, 8), (1, 2, 4), (1, 2, 8), (1, 4, 4),
     (1, 4, 8), (1, 8, 8)]
)


@given(
    weights=weight_choices,
    total_batch=st.sampled_from([64, 128, 256, 512]),
    subset=st.integers(min_value=0, max_value=8),
    ads=st.booleans(),
    hf=st.booleans(),
    ctd=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_any_valid_config_completes_exactly(
    weights, total_batch, subset, ads, hf, ctd
):
    config = FelaConfig(
        partition=_PARTITION,
        total_batch=total_batch,
        num_workers=8,
        weights=weights,
        conditional_subset_size=subset,
        ads_enabled=ads,
        hf_enabled=hf,
        ctd_enabled=ctd,
        iterations=2,
    )
    result = FelaRuntime(config).run()
    expected_tokens = sum(config.token_counts())
    for record in result.records:
        assert sum(record.work_by_worker) == expected_tokens
    assert result.total_time > 0


@given(
    probability=st.floats(min_value=0.0, max_value=1.0),
    delay=st.floats(min_value=0.0, max_value=20.0),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=15, deadline=None)
def test_any_straggler_pattern_completes(probability, delay, seed):
    config = FelaConfig(
        partition=_PARTITION,
        total_batch=256,
        num_workers=8,
        weights=(1, 2, 8),
        conditional_subset_size=2,
        iterations=3,
    )
    injector = ProbabilityStraggler(probability, delay, seed=seed)
    result = FelaRuntime(config, straggler=injector).run()
    expected_tokens = sum(config.token_counts())
    for record in result.records:
        assert sum(record.work_by_worker) == expected_tokens


@given(seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=10, deadline=None)
def test_determinism_under_randomized_stragglers(seed):
    """Same seed -> bit-identical run; the straggler RNG is the only
    randomness and it is seeded."""

    def run():
        config = FelaConfig(
            partition=_PARTITION,
            total_batch=128,
            num_workers=8,
            weights=(1, 2, 8),
            iterations=2,
        )
        injector = TransientStraggler(5.0, hits=3, seed=seed)
        return FelaRuntime(config, straggler=injector).run()

    first, second = run(), run()
    assert first.total_time == second.total_time
    assert [r.work_by_worker for r in first.records] == [
        r.work_by_worker for r in second.records
    ]


@pytest.mark.parametrize("mode,staleness", [
    (SyncMode.SSP, 1), (SyncMode.SSP, 3), (SyncMode.ASP, 0),
])
def test_relaxed_sync_conserves_tokens(mode, staleness):
    config = FelaConfig(
        partition=_PARTITION,
        total_batch=256,
        num_workers=8,
        weights=(1, 2, 8),
        sync_mode=mode,
        staleness=staleness,
        iterations=4,
    )
    result = FelaRuntime(config).run()
    expected_tokens = sum(config.token_counts())
    for record in result.records:
        assert sum(record.work_by_worker) == expected_tokens
