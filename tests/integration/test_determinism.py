"""Determinism regression: same seed, byte-identical output.

Fela's elastic-tuning comparisons (Fig. 6-10) are meaningful only if a
seeded experiment reproduces exactly.  This runs the full pipeline —
two-phase configuration tuning, then a straggler-injected training run
with a timeline recorder attached — twice from scratch, and asserts the
serialized metrics, tuning table, and timeline are byte-identical.
"""

import json

from repro.core import FelaRuntime
from repro.harness import ExperimentRunner, ExperimentSpec
from repro.metrics.timeline import TimelineRecorder
from repro.stragglers import ProbabilityStraggler

SPEC = ExperimentSpec(
    model_name="vgg19", total_batch=256, num_workers=8, iterations=3
)


def _serialize_run() -> str:
    """One complete tuned + straggler-injected experiment, as JSON."""
    runner = ExperimentRunner()  # fresh caches: tuning re-runs too
    tuning = runner.tuning(SPEC)
    config = runner.fela_config(SPEC)
    recorder = TimelineRecorder()
    result = FelaRuntime(
        config,
        straggler=ProbabilityStraggler(0.3, 2.0, seed=7),
        recorder=recorder,
    ).run()
    payload = {
        "tuning": [
            {
                "index": case.index,
                "phase": case.phase,
                "weights": list(case.weights),
                "subset_size": case.subset_size,
                "per_iteration_time": case.per_iteration_time,
            }
            for case in tuning.cases
        ],
        "best": {
            "weights": list(tuning.best_weights),
            "subset_size": tuning.best_subset_size,
        },
        "total_time": result.total_time,
        "throughput": result.average_throughput,
        "records": [
            {
                "iteration": record.iteration,
                "start": record.start,
                "end": record.end,
                "work": list(record.work_by_worker),
            }
            for record in result.records
        ],
        "stats": {
            "ts_requests": result.stats["ts_requests"],
            "ts_conflicts": result.stats["ts_conflicts"],
            "network_bytes": result.stats["network_bytes"],
            "tokens_by_worker": result.stats["tokens_by_worker"],
        },
        "timeline": [
            {
                "worker": span.worker,
                "kind": span.kind,
                "start": span.start,
                "end": span.end,
                "label": span.label,
            }
            for span in recorder.spans()
        ],
        "gantt": recorder.render_gantt(),
    }
    return json.dumps(payload, sort_keys=True)


def test_seeded_experiment_is_byte_identical():
    first = _serialize_run()
    second = _serialize_run()
    assert first == second
