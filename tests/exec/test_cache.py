"""Robustness contract of the persistent result cache.

The theme throughout: a damaged or stale cache may cost recomputation
time but can never surface a wrong value — every malformed entry is
evicted and reported as a miss.
"""

import json

import pytest

from repro.errors import CacheError
from repro.exec import CACHE_SCHEMA, ResultCache, canonical_key


@pytest.fixture()
def cache_dir(tmp_path):
    return tmp_path / "cache"


def entry_path(cache_dir, key):
    return cache_dir / f"{key}.json"


KEY = canonical_key("test", {"weights": (1, 2, 8), "subset": 4})
OTHER = canonical_key("test", {"weights": (1, 2, 8), "subset": 8})


class TestCanonicalKey:
    def test_deterministic_and_input_sensitive(self):
        assert KEY == canonical_key(
            "test", {"subset": 4, "weights": (1, 2, 8)}
        )
        assert KEY != OTHER
        assert KEY != canonical_key("other-kind", {"weights": (1, 2, 8), "subset": 4})

    def test_key_is_hex_filename_safe(self):
        assert len(KEY) == 64
        assert all(c in "0123456789abcdef" for c in KEY)


class TestMemoryTier:
    def test_memo_returns_identical_object(self):
        cache = ResultCache()
        value = {"deep": (1, 2)}
        cache.put(KEY, value)
        assert cache.get(KEY) is value
        assert cache.get(KEY) is cache.get(KEY)

    def test_memory_only_touches_no_disk(self):
        cache = ResultCache()
        cache.put(KEY, 1.5)
        assert cache.directory is None
        assert cache.entries() == []

    def test_none_is_rejected(self):
        with pytest.raises(CacheError):
            ResultCache().put(KEY, None)


class TestDiskTier:
    def test_roundtrip_across_instances(self, cache_dir):
        ResultCache(cache_dir).put(KEY, 0.125)
        fresh = ResultCache(cache_dir)
        assert fresh.get(KEY) == 0.125
        assert fresh.hits == 1

    def test_miss_on_unknown_key(self, cache_dir):
        cache = ResultCache(cache_dir)
        assert cache.get(OTHER) is None
        assert cache.misses == 1

    def test_decode_hook_applied(self, cache_dir):
        ResultCache(cache_dir).put(KEY, 2.0)
        fresh = ResultCache(cache_dir)
        assert fresh.get(KEY, decode=lambda p: p * 2) == 4.0

    def test_no_tmp_files_left_behind(self, cache_dir):
        cache = ResultCache(cache_dir)
        for index in range(20):
            cache.put(canonical_key("churn", index), float(index))
        assert list(cache_dir.glob(".tmp-*")) == []
        assert len(list(cache_dir.glob("*.json"))) == 20

    def test_concurrent_writers_last_full_write_wins(self, cache_dir):
        # Two independent cache instances (as two pool workers would be)
        # racing on one key: both writes are whole-file renames, so the
        # entry is always a complete, valid envelope.
        a, b = ResultCache(cache_dir), ResultCache(cache_dir)
        a.put(KEY, 1.0)
        b.put(KEY, 1.0)
        envelope = json.loads(entry_path(cache_dir, KEY).read_text())
        assert envelope["key"] == KEY
        assert envelope["payload"] == 1.0
        assert list(cache_dir.glob(".tmp-*")) == []


class TestStrictLoader:
    """Every malformed-entry shape: evict, miss, recompute."""

    def put_one(self, cache_dir):
        ResultCache(cache_dir).put(KEY, 0.5)
        return entry_path(cache_dir, KEY)

    def assert_evicted(self, cache_dir, path):
        fresh = ResultCache(cache_dir)
        assert fresh.get(KEY) is None
        assert fresh.misses == 1
        assert fresh.evictions == 1
        assert not path.exists()
        # The slot is usable again after recompute.
        fresh.put(KEY, 0.5)
        assert ResultCache(cache_dir).get(KEY) == 0.5

    def test_corrupted_json(self, cache_dir):
        path = self.put_one(cache_dir)
        path.write_text("{this is not json", encoding="utf-8")
        self.assert_evicted(cache_dir, path)

    def test_truncated_file(self, cache_dir):
        path = self.put_one(cache_dir)
        text = path.read_text()
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        self.assert_evicted(cache_dir, path)

    def test_stale_schema_version(self, cache_dir):
        path = self.put_one(cache_dir)
        envelope = json.loads(path.read_text())
        envelope["schema"] = CACHE_SCHEMA + 1
        path.write_text(json.dumps(envelope), encoding="utf-8")
        self.assert_evicted(cache_dir, path)

    def test_stored_key_mismatch(self, cache_dir):
        # A hash collision (or a hand-renamed file): the envelope's own
        # key disagrees with the name we looked up.
        ResultCache(cache_dir).put(OTHER, 9.0)
        entry_path(cache_dir, OTHER).rename(entry_path(cache_dir, KEY))
        self.assert_evicted(cache_dir, entry_path(cache_dir, KEY))

    def test_non_object_envelope(self, cache_dir):
        path = self.put_one(cache_dir)
        path.write_text(json.dumps([1, 2, 3]), encoding="utf-8")
        self.assert_evicted(cache_dir, path)

    def test_decode_hook_failure_evicts(self, cache_dir):
        path = self.put_one(cache_dir)

        def decode(_payload):
            raise ValueError("payload shape changed")

        fresh = ResultCache(cache_dir)
        assert fresh.get(KEY, decode=decode) is None
        assert fresh.evictions == 1
        assert not path.exists()


class TestMaintenance:
    def test_entries_sorted_by_key(self, cache_dir):
        cache = ResultCache(cache_dir)
        keys = [canonical_key("n", index) for index in range(5)]
        for key in keys:
            cache.put(key, 1.0)
        listed = cache.entries()
        assert [key for key, _ in listed] == sorted(keys)
        assert all(size > 0 for _, size in listed)

    def test_clear_removes_everything(self, cache_dir):
        cache = ResultCache(cache_dir)
        cache.put(KEY, 1.0)
        cache.put(OTHER, 2.0)
        (cache_dir / ".tmp-9999-1-deadbeef").write_text("partial")
        assert cache.clear() == 3
        assert cache.entries() == []
        assert cache.get(KEY) is None  # memo dropped too

    def test_stats_counters(self, cache_dir):
        cache = ResultCache(cache_dir)
        cache.put(KEY, 1.0)
        cache.get(KEY)
        cache.get(OTHER)
        stats = cache.stats()
        assert stats["directory"] == str(cache_dir)
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["evictions"] == 0
