"""Sweep heartbeats and progress lines: observable but non-perturbing."""

import pytest

from repro.exec import ResultCache, SweepExecutor
from repro.store import RunLedger

from tests.exec.test_executor import SquareJob


@pytest.fixture()
def ledger(tmp_path):
    with RunLedger(tmp_path / "ledger.sqlite") as opened:
        yield opened


class TestHeartbeats:
    def test_started_then_done_rows_in_index_order(self, ledger):
        executor = SweepExecutor(ledger=ledger, sweep_label="unit")
        jobs = [SquareJob(value, cached=False) for value in (3, 1, 2)]
        assert executor.map(jobs) == [9, 1, 4]
        sweep = ledger.sweeps()[0]
        assert sweep["label"] == "unit"
        assert sweep["total_jobs"] == 3
        rows = ledger.sweep_jobs(sweep["sweep_id"])
        assert [(row["status"], row["job_index"]) for row in rows] == [
            ("started", 0), ("started", 1), ("started", 2),
            ("done", 0), ("done", 1), ("done", 2),
        ]
        assert all(
            row["elapsed_wall"] >= 0.0
            for row in rows
            if row["status"] == "done"
        )

    def test_cache_hits_become_cached_rows(self, ledger):
        cache = ResultCache()
        warmup = SweepExecutor(cache=cache)
        warmup.map([SquareJob(3)])
        executor = SweepExecutor(cache=cache, ledger=ledger)
        assert executor.map([SquareJob(3), SquareJob(5)]) == [9, 25]
        rows = ledger.sweep_jobs()
        assert [(row["status"], row["job_index"]) for row in rows] == [
            ("cached", 0), ("started", 1), ("done", 1),
        ]
        assert rows[0]["cache_hit"] == 1

    def test_empty_map_opens_no_sweep(self, ledger):
        SweepExecutor(ledger=ledger).map([])
        assert ledger.sweeps() == []

    def test_ledger_rows_validate(self, ledger):
        SweepExecutor(ledger=ledger).map(
            [SquareJob(2, cached=False)]
        )
        assert ledger.validate() == []


class TestProgressLines:
    def test_lines_go_to_stderr_only(self, capsys):
        executor = SweepExecutor(progress=True)
        executor.map([SquareJob(2, cached=False),
                      SquareJob(3, cached=False)])
        captured = capsys.readouterr()
        assert captured.out == ""
        lines = captured.err.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("[1/2] SquareJob #0 done in ")
        assert lines[1].startswith("[2/2] SquareJob #1 done in ")

    def test_cache_hits_are_labelled(self, capsys):
        cache = ResultCache()
        SweepExecutor(cache=cache).map([SquareJob(4)])
        capsys.readouterr()
        executor = SweepExecutor(cache=cache, progress=True)
        executor.map([SquareJob(4)])
        err = capsys.readouterr().err
        assert "[1/1] SquareJob #0 cache hit (1 cache hits)" in err

    def test_results_identical_with_and_without_side_channel(
        self, tmp_path, capsys
    ):
        jobs = [SquareJob(value, cached=False) for value in range(6)]
        plain = SweepExecutor().map(jobs)
        with RunLedger(tmp_path / "ledger.sqlite") as ledger:
            observed = SweepExecutor(
                ledger=ledger, progress=True
            ).map(jobs)
        capsys.readouterr()
        assert observed == plain


class TestParallelHeartbeats:
    def test_parallel_row_order_matches_serial(self, tmp_path):
        jobs = [SquareJob(value, cached=False) for value in range(4)]

        def rows_for(jobs_count, path):
            with RunLedger(path) as ledger:
                executor = SweepExecutor(
                    jobs=jobs_count, ledger=ledger
                )
                try:
                    assert executor.map(jobs) == [0, 1, 4, 9]
                finally:
                    executor.close()
                return [
                    (row["status"], row["job_index"])
                    for row in ledger.sweep_jobs()
                ]

        serial = rows_for(1, tmp_path / "serial.sqlite")
        parallel = rows_for(2, tmp_path / "parallel.sqlite")
        assert parallel == serial
