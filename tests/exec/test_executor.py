"""Ordering, caching, and fallback behaviour of the sweep executor."""

import dataclasses
import warnings

import pytest

from repro.errors import CacheError, ConfigurationError
from repro.exec import (
    JobSpec,
    ResultCache,
    SweepExecutor,
    canonical_key,
    execute_job,
    resolve_jobs,
)


@dataclasses.dataclass(frozen=True)
class SquareJob(JobSpec):
    """Module-level (hence spawn-picklable) toy job."""

    value: int
    cached: bool = True

    def cache_key(self):
        if not self.cached:
            return None
        return canonical_key("square", self.value)

    def execute(self):
        return self.value * self.value


@dataclasses.dataclass(frozen=True)
class UncodableJob(JobSpec):
    """A job whose result the codec cannot persist."""

    def cache_key(self):
        return canonical_key("uncodable", 0)

    def encode_result(self, value):
        raise CacheError("not representable")

    def execute(self):
        return object()


class TestResolveJobs:
    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(0)

    def test_within_budget_passes_through(self):
        assert resolve_jobs(1) == (1, None)

    def test_caps_at_cpu_count_with_warning(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        effective, warning = resolve_jobs(64)
        assert effective == 2
        assert warning is not None and "64" in warning


class TestSerialMap:
    def test_results_in_job_order(self):
        executor = SweepExecutor()
        jobs = [SquareJob(value) for value in (5, 3, 1, 4)]
        assert executor.map(jobs) == [25, 9, 1, 16]
        assert executor.jobs_executed == 4

    def test_invalid_jobs_count(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor(jobs=0)

    def test_cache_hits_skip_execution(self):
        cache = ResultCache()
        first = SweepExecutor(cache=cache)
        assert first.map([SquareJob(3), SquareJob(4)]) == [9, 16]
        second = SweepExecutor(cache=cache)
        assert second.map([SquareJob(3), SquareJob(4)]) == [9, 16]
        assert second.cache_hits == 2
        assert second.jobs_executed == 0

    def test_uncached_jobs_always_execute(self):
        cache = ResultCache()
        executor = SweepExecutor(cache=cache)
        executor.map([SquareJob(3, cached=False)])
        executor.map([SquareJob(3, cached=False)])
        assert executor.cache_hits == 0
        assert executor.jobs_executed == 2

    def test_without_cache_nothing_is_stored(self):
        executor = SweepExecutor()
        executor.map([SquareJob(3)])
        executor.map([SquareJob(3)])
        assert executor.cache_hits == 0
        assert executor.jobs_executed == 2

    def test_unencodable_result_still_returned(self):
        executor = SweepExecutor(cache=ResultCache())
        results = executor.map([UncodableJob()])
        assert len(results) == 1 and results[0] is not None
        # Not cached: a second map re-executes.
        executor.map([UncodableJob()])
        assert executor.jobs_executed == 2

    def test_execute_job_trampoline(self):
        assert execute_job(SquareJob(6)) == 36


class TestProcessPool:
    def test_pool_results_match_serial_exactly(self):
        jobs = [SquareJob(value) for value in range(8)]
        serial = SweepExecutor(jobs=1).map(jobs)
        with SweepExecutor(jobs=2) as pooled:
            assert pooled.map(jobs) == serial
            # The pool is reused across map() calls.
            assert pooled.map(jobs) == serial

    def test_pool_populates_shared_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = [SquareJob(value) for value in range(4)]
        with SweepExecutor(jobs=2, cache=cache) as pooled:
            assert pooled.map(jobs) == [0, 1, 4, 9]
        fresh = SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "cache"))
        assert fresh.map(jobs) == [0, 1, 4, 9]
        assert fresh.cache_hits == 4

    def test_broken_pool_falls_back_in_process(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        executor = SweepExecutor(jobs=2)

        class ExplodingPool:
            def submit(self, *_args, **_kwargs):
                raise BrokenProcessPool("sandboxed")

            def shutdown(self):
                pass

        monkeypatch.setattr(
            executor, "_ensure_pool", lambda: ExplodingPool()
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            results = executor.map([SquareJob(2), SquareJob(3)])
        assert results == [4, 9]
        assert any(
            "in-process" in str(w.message) for w in caught
        )
        assert executor._pool is None
