"""Exact round-trip guarantees of the result-cache codecs."""

import json
import math

import pytest

from repro.errors import CacheError
from repro.exec import (
    decode_run_result,
    decode_tuning_result,
    decode_value,
    encode_run_result,
    encode_tuning_result,
    encode_value,
)
from repro.metrics import IterationRecord, RunResult
from repro.tuning import TuningCase, TuningResult


def roundtrip(value):
    """Encode, push through real JSON text, decode."""
    return decode_value(json.loads(json.dumps(encode_value(value))))


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            1 << 62,
            "",
            "weights",
            0.1,
            1e-300,
            math.pi,
            float("inf"),
            float("-inf"),
        ],
    )
    def test_scalars_roundtrip_exactly(self, value):
        assert roundtrip(value) == value

    def test_float_bits_survive_json(self):
        # repr-based JSON floats are the shortest round-tripping form,
        # so equality here is bit-for-bit, not approximate.
        value = 0.1 + 0.2
        assert roundtrip(value) == value

    def test_tuples_survive_as_tuples(self):
        value = (1, (2.5, "x"), ())
        decoded = roundtrip(value)
        assert decoded == value
        assert isinstance(decoded, tuple)
        assert isinstance(decoded[1], tuple)

    def test_lists_stay_lists(self):
        decoded = roundtrip([1, [2], (3,)])
        assert decoded == [1, [2], (3,)]
        assert isinstance(decoded[1], list)
        assert isinstance(decoded[2], tuple)

    def test_non_string_dict_keys(self):
        value = {0: "a", (1, 2): 3.5, "plain": None}
        assert roundtrip(value) == value

    def test_tag_colliding_string_keys(self):
        value = {"__tuple__": [1, 2], "__items__": "x"}
        assert roundtrip(value) == value

    def test_unsupported_type_raises(self):
        with pytest.raises(CacheError):
            encode_value({"bad": object()})
        with pytest.raises(CacheError):
            encode_value({1, 2, 3})


class TestResultCodecs:
    def _tuning_result(self):
        cases = (
            TuningCase(
                index=0,
                phase=1,
                weights=(1, 2, 8),
                subset_size=8,
                per_iteration_time=0.125,
            ),
            TuningCase(
                index=1,
                phase=1,
                weights=(1, 8, 8),
                subset_size=8,
                per_iteration_time=float("inf"),
            ),
            TuningCase(
                index=2,
                phase=2,
                weights=(1, 2, 8),
                subset_size=4,
                per_iteration_time=0.0625,
            ),
        )
        return TuningResult(
            cases=cases,
            best_weights=(1, 2, 8),
            best_subset_size=4,
            warmup_iterations=26,
            cases_profiled=18,
            cases_pruned=5,
            cache_hits=3,
            wall_seconds=0.75,
        )

    def test_tuning_result_roundtrip(self):
        result = self._tuning_result()
        payload = json.loads(json.dumps(encode_tuning_result(result)))
        assert decode_tuning_result(payload) == result

    def test_malformed_tuning_payload_raises(self):
        with pytest.raises(CacheError):
            decode_tuning_result({"cases": []})
        with pytest.raises(CacheError):
            decode_tuning_result(
                {"cases": [{"index": "zero"}], "best_weights": []}
            )

    def test_run_result_roundtrip(self):
        result = RunResult(
            runtime_name="fela",
            model_name="vgg19",
            total_batch=256,
            iterations=2,
            total_time=3.5,
            records=(
                IterationRecord(
                    iteration=0,
                    start=0.0,
                    end=1.75,
                    work_by_worker=(3, 2, 3),
                ),
                IterationRecord(
                    iteration=1,
                    start=1.75,
                    end=3.5,
                    work_by_worker=(2, 3, 3),
                ),
            ),
            stats={"tokens": 16, "sync": (1, 2), "nested": {"k": 0.5}},
        )
        payload = json.loads(json.dumps(encode_run_result(result)))
        assert decode_run_result(payload) == result

    def test_malformed_run_payload_raises(self):
        with pytest.raises(CacheError):
            decode_run_result({"runtime_name": "fela"})
