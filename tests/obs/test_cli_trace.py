"""CLI coverage for ``repro trace``, ``--trace-out``, and the validator."""

import json

from repro.cli import main
from repro.obs import validate_chrome_trace, verify_causal_chains
from repro.obs.validate import main as validate_main


def _small_args(extra):
    return [
        "vgg19",
        "--batch",
        "64",
        "--workers",
        "2",
        "--iterations",
        "1",
    ] + extra


class TestTraceCommand:
    def test_writes_valid_trace_and_prints_report(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        csv_path = tmp_path / "metrics.csv"
        code = main(
            ["trace"]
            + _small_args(
                ["--out", str(trace_path), "--metrics-csv", str(csv_path)]
            )
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Run report" in out
        assert "Critical path" in out
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) == []
        assert verify_causal_chains(payload) == []
        assert csv_path.read_text().startswith(
            "metric,kind,labels,field,value"
        )

    def test_run_with_trace_out(self, tmp_path, capsys):
        trace_path = tmp_path / "run-trace.json"
        code = main(
            ["run"] + _small_args(["--trace-out", str(trace_path)])
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) == []

    def test_run_trace_out_rejected_for_baselines(self, tmp_path, capsys):
        code = main(
            ["run"]
            + _small_args(
                ["--runtime", "dp", "--trace-out", str(tmp_path / "x.json")]
            )
        )
        assert code == 2
        assert "fela" in capsys.readouterr().err


class TestValidatorCli:
    def test_accepts_fresh_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["trace"] + _small_args(["--out", str(trace_path)])) == 0
        capsys.readouterr()
        assert validate_main(["--chains", str(trace_path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
        assert validate_main([str(bad)]) == 1
        assert "phase" in capsys.readouterr().out
