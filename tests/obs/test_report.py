"""Run-report rendering: critical path and straggler attribution."""

from repro.core import FelaConfig, FelaRuntime
from repro.hardware import Cluster, ClusterSpec
from repro.obs import (
    EV_TRAINED,
    MetricsRegistry,
    Tracer,
    critical_path,
    render_run_report,
    straggler_attribution,
)
from repro.stragglers import RoundRobinStraggler


def _traced(partition, straggler=None):
    config = FelaConfig(
        partition=partition,
        total_batch=128,
        num_workers=4,
        weights=(1, 2, 8),
        conditional_subset_size=2,
        iterations=2,
    )
    tracer = Tracer()
    metrics = MetricsRegistry()
    result = FelaRuntime(
        config,
        Cluster(ClusterSpec(num_nodes=4)),
        straggler=straggler,
        tracer=tracer,
        metrics=metrics,
    ).run()
    return result, tracer, metrics


class TestCriticalPath:
    def test_walks_dependency_chain_to_the_last_sync(self, vgg19_partition):
        _, tracer, _ = _traced(vgg19_partition)
        path = critical_path(tracer.events)
        assert path, "expected a non-empty critical path"
        # Every hop is a training span and levels never decrease.
        levels = [hop.args["level"] for hop in path]
        assert all(hop.name == EV_TRAINED for hop in path)
        assert levels == sorted(levels)
        # Consecutive hops are causally ordered in time.
        for earlier, later in zip(path, path[1:]):
            assert earlier.end <= later.end

    def test_empty_trace_has_empty_path(self):
        assert critical_path(()) == []


class TestStragglerAttribution:
    def test_delayed_workers_are_attributed(self, vgg19_partition):
        _, tracer, _ = _traced(
            vgg19_partition, straggler=RoundRobinStraggler(2.0)
        )
        attribution = straggler_attribution(tracer.events)
        assert attribution, "round-robin straggler must show up"
        for row in attribution.values():
            assert row["delay"] > 0
            assert 0.0 <= row["absorbed"] <= row["delay"] + 1e-9

    def test_no_stragglers_no_rows(self, vgg19_partition):
        _, tracer, _ = _traced(vgg19_partition)
        assert straggler_attribution(tracer.events) == {}


class TestRenderRunReport:
    def test_contains_all_sections(self, vgg19_partition):
        result, tracer, metrics = _traced(
            vgg19_partition, straggler=RoundRobinStraggler(2.0)
        )
        report = render_run_report(result, tracer.events, metrics)
        for heading in (
            "Run report",
            "Worker activity",
            "Critical path",
            "Straggler attribution",
            "Token server",
            "Synchronization",
        ):
            assert heading in report
        assert result.model_name in report

    def test_renders_without_registry(self, vgg19_partition):
        result, tracer, _ = _traced(vgg19_partition)
        report = render_run_report(result, tracer.events)
        assert "Token server" in report

    def test_no_faults_attached_no_faults_section(self, vgg19_partition):
        result, tracer, _ = _traced(vgg19_partition)
        assert "Faults and degradation" not in render_run_report(
            result, tracer.events
        )


class TestFaultsSection:
    def _faulted(self, partition, script):
        from repro.faults import FaultController, parse_faults

        config = FelaConfig(
            partition=partition,
            total_batch=128,
            num_workers=4,
            weights=(1, 2, 8),
            conditional_subset_size=2,
            iterations=3,
        )
        tracer = Tracer()
        result = FelaRuntime(
            config,
            Cluster(ClusterSpec(num_nodes=4)),
            tracer=tracer,
            faults=FaultController(parse_faults(script)),
        ).run()
        return result, tracer

    def test_crash_accounting_is_reported(self, vgg19_partition):
        result, tracer = self._faulted(vgg19_partition, "crash:0@1.0")
        report = render_run_report(result, tracer.events)
        assert "-- Faults and degradation --" in report
        assert "W0 crashed at 1.000 s" in report
        assert "detected in" in report
        assert "compute lost" in report
        summary = result.stats["faults"]
        detection = sum(summary["recovery_detection_seconds"])
        assert f"{detection:.3f} s detection latency" in report

    def test_membership_changes_are_reported(self, vgg19_partition):
        result, tracer = self._faulted(vgg19_partition, "leave:1@2.0")
        report = render_run_report(result, tracer.events)
        assert "left gracefully: W1" in report
        assert "(no worker failures)" in report
