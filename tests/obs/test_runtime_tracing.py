"""The runtime's tracing contract: zero perturbation, full coverage.

The acceptance property of the observability subsystem is that it only
*observes*: a traced run must finish at exactly the same ``total_time``
as an untraced one, while producing a complete minted->synced causal
chain for every token level.
"""

import pytest

from repro.core import FelaConfig, FelaRuntime, PipelinedFelaRuntime, SyncMode
from repro.hardware import Cluster, ClusterSpec
from repro.metrics.timeline import TimelineRecorder
from repro.obs import (
    EV_ALLREDUCE,
    EV_DELAY,
    EV_TRANSFER,
    EV_TS_REQUEST,
    MetricsRegistry,
    TOKEN_LIFECYCLE,
    Tracer,
    chrome_trace,
    verify_causal_chains,
)
from repro.stragglers import RoundRobinStraggler


def _make_runtime(partition, cls=FelaRuntime, straggler=None, **kwargs):
    defaults = dict(
        partition=partition,
        total_batch=128,
        num_workers=4,
        weights=(1, 2, 8),
        conditional_subset_size=2,
        iterations=2,
    )
    defaults.update(kwargs)
    config = FelaConfig(**defaults)
    cluster = Cluster(ClusterSpec(num_nodes=config.num_workers))
    return cls(config, cluster, straggler=straggler)


class TestZeroPerturbation:
    def test_traced_total_time_matches_untraced_exactly(
        self, vgg19_partition
    ):
        untraced = _make_runtime(vgg19_partition).run()
        tracer = Tracer()
        runtime = _make_runtime(vgg19_partition)
        traced_runtime = FelaRuntime(
            runtime.config,
            Cluster(ClusterSpec(num_nodes=4)),
            tracer=tracer,
            metrics=MetricsRegistry(),
        )
        traced = traced_runtime.run()
        assert traced.total_time == untraced.total_time
        assert len(tracer.events) > 0

    def test_traced_matches_untraced_under_stragglers(
        self, vgg19_partition
    ):
        untraced = _make_runtime(
            vgg19_partition, straggler=RoundRobinStraggler(2.0)
        ).run()
        tracer = Tracer()
        runtime = _make_runtime(vgg19_partition)
        traced = FelaRuntime(
            runtime.config,
            Cluster(ClusterSpec(num_nodes=4)),
            straggler=RoundRobinStraggler(2.0),
            tracer=tracer,
        ).run()
        assert traced.total_time == untraced.total_time
        delays = [e for e in tracer.events if e.name == EV_DELAY]
        assert delays and all(e.duration > 0 for e in delays)

    def test_pipelined_runtime_traces_identically(self, vgg19_partition):
        kwargs = dict(sync_mode=SyncMode.SSP, staleness=1)
        untraced = _make_runtime(
            vgg19_partition, PipelinedFelaRuntime, **kwargs
        ).run()
        runtime = _make_runtime(
            vgg19_partition, PipelinedFelaRuntime, **kwargs
        )
        traced = PipelinedFelaRuntime(
            runtime.config,
            Cluster(ClusterSpec(num_nodes=4)),
            tracer=Tracer(),
        ).run()
        assert traced.total_time == untraced.total_time


class TestTraceContents:
    @pytest.fixture()
    def traced(self, vgg19_partition):
        tracer = Tracer()
        runtime = _make_runtime(vgg19_partition)
        runtime = FelaRuntime(
            runtime.config,
            Cluster(ClusterSpec(num_nodes=4)),
            tracer=tracer,
            metrics=MetricsRegistry(),
        )
        result = runtime.run()
        return runtime, result, tracer

    def test_every_level_has_a_complete_causal_chain(self, traced):
        _, _, tracer = traced
        payload = chrome_trace(tracer.events)
        assert verify_causal_chains(payload) == []

    def test_every_lifecycle_stage_appears(self, traced):
        _, _, tracer = traced
        names = {event.name for event in tracer.events}
        for stage in TOKEN_LIFECYCLE:
            assert stage in names
        assert EV_ALLREDUCE in names
        assert EV_TRANSFER in names
        assert EV_TS_REQUEST in names

    def test_event_times_are_monotone_per_seq(self, traced):
        _, result, tracer = traced
        for event in tracer.events:
            assert 0.0 <= event.start <= result.total_time
            assert event.end <= result.total_time + 1e-9

    def test_metrics_registry_backs_legacy_stats(self, traced):
        runtime, result, _ = traced
        stats = result.stats
        assert stats["ts_requests"] == runtime.server.requests
        assert stats["tokens_by_worker"] == runtime.server.tokens_by_worker
        assert (
            stats["ts_request_latency"]["count"] == stats["ts_requests"]
        )
        assert len(stats["fetch_seconds_by_worker"]) == 4
        assert len(stats["idle_seconds_by_worker"]) == 4
        assert all(v >= 0 for v in stats["idle_seconds_by_worker"])
        assert set(stats["sync_bytes_by_level"]) == {0, 1, 2}


class TestRecorderBridge:
    def test_recorder_is_fed_from_the_trace_stream(self, vgg19_partition):
        recorder = TimelineRecorder()
        runtime = _make_runtime(vgg19_partition)
        FelaRuntime(
            runtime.config,
            Cluster(ClusterSpec(num_nodes=4)),
            recorder=recorder,
        ).run()
        assert recorder.spans(kind="compute")
        # A recorder alone implicitly enables tracing.
        assert recorder.end_time() > 0

    def test_recorder_spans_match_direct_trace(self, vgg19_partition):
        recorder = TimelineRecorder()
        runtime = _make_runtime(vgg19_partition)
        FelaRuntime(
            runtime.config,
            Cluster(ClusterSpec(num_nodes=4)),
            recorder=recorder,
        ).run()

        tracer = Tracer()
        runtime2 = _make_runtime(vgg19_partition)
        FelaRuntime(
            runtime2.config,
            Cluster(ClusterSpec(num_nodes=4)),
            tracer=tracer,
        ).run()
        rebuilt = TimelineRecorder.from_trace(tracer.events)
        assert recorder.spans() == rebuilt.spans()
