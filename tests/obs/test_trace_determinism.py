"""Seeded determinism: traced reruns are byte-identical.

Traces and metric dumps are comparison artifacts; they are only usable
as such if a seeded experiment reproduces them byte for byte.
"""

from repro.core import FelaConfig, FelaRuntime
from repro.hardware import Cluster, ClusterSpec
from repro.obs import (
    MetricsRegistry,
    Tracer,
    dump_chrome_trace,
    metrics_to_csv,
)
from repro.stragglers import ProbabilityStraggler


def _dumps(partition) -> tuple[str, str]:
    config = FelaConfig(
        partition=partition,
        total_batch=128,
        num_workers=4,
        weights=(1, 2, 8),
        conditional_subset_size=2,
        iterations=2,
    )
    tracer = Tracer()
    metrics = MetricsRegistry()
    FelaRuntime(
        config,
        Cluster(ClusterSpec(num_nodes=4)),
        straggler=ProbabilityStraggler(0.4, 1.5, seed=11),
        tracer=tracer,
        metrics=metrics,
    ).run()
    return dump_chrome_trace(tracer.events), metrics_to_csv(metrics)


def test_trace_and_metrics_are_byte_identical_across_reruns(
    vgg19_partition,
):
    trace_a, csv_a = _dumps(vgg19_partition)
    trace_b, csv_b = _dumps(vgg19_partition)
    assert trace_a == trace_b
    assert csv_a == csv_b
    assert len(trace_a) > 1000  # non-trivial payload
