"""Unit tests for the tracer pair (null + recording)."""

import dataclasses

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    CAT_TOKEN,
    EV_MINTED,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
)
from repro.sim import Environment


class TestNullTracer:
    def test_disabled_and_empty(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.events == ()

    def test_every_emission_is_a_noop(self):
        tracer = NullTracer()
        tracer.instant("x", CAT_TOKEN)
        tracer.span("x", CAT_TOKEN, 0.0, 1.0)
        tracer.transfer(0, 1, 10.0, 0.0, 1.0)
        tracer.allreduce([0, 1], 10.0, 20.0, 0.0, 1.0)
        tracer.ts_request(0, 0.0, 1.0, granted=True, conflict=False)
        tracer.straggler_delay(0, 0, 0.0, 1.0)
        tracer.level_synced(0, 0, [0], 0.0)
        assert tracer.events == ()

    def test_environment_defaults_to_the_shared_null_tracer(self):
        env = Environment()
        assert env.tracer is NULL_TRACER


class TestTracer:
    def test_requires_attached_env(self):
        with pytest.raises(ObservabilityError):
            Tracer().instant("x", CAT_TOKEN)

    def test_clock_reads_from_env(self):
        env = Environment()
        tracer = Tracer()
        tracer.attach_env(env)

        def advance():
            yield env.timeout(2.5)

        env.process(advance())
        env.run()
        tracer.instant("x", CAT_TOKEN)
        assert tracer.events[-1].start == 2.5

    def test_sequence_numbers_follow_emission_order(self):
        tracer = Tracer()
        tracer.attach_env(Environment())
        for _ in range(5):
            tracer.instant("x", CAT_TOKEN)
        assert [event.seq for event in tracer.events] == [0, 1, 2, 3, 4]

    def test_span_rejects_negative_duration(self):
        tracer = Tracer()
        tracer.attach_env(Environment())
        with pytest.raises(ObservabilityError):
            tracer.span("x", CAT_TOKEN, 2.0, 1.0)


class TestTraceEvent:
    def test_frozen_and_validated(self):
        event = TraceEvent(
            name=EV_MINTED,
            category=CAT_TOKEN,
            start=1.0,
            duration=0.5,
            track=0,
            seq=0,
        )
        assert event.end == 1.5
        assert event.is_span
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.start = 2.0  # type: ignore[misc]

    def test_rejects_unknown_category(self):
        with pytest.raises(ObservabilityError):
            TraceEvent(
                name="x",
                category="nonsense",
                start=0.0,
                duration=0.0,
                track=0,
                seq=0,
            )

    def test_rejects_negative_duration(self):
        with pytest.raises(ObservabilityError):
            TraceEvent(
                name="x",
                category=CAT_TOKEN,
                start=0.0,
                duration=-1.0,
                track=0,
                seq=0,
            )
