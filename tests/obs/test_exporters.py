"""Export round-trips, schema validation, and causal-chain checks."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    CAT_NETWORK,
    CAT_SYNC,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    complete_events,
    metrics_to_csv,
    read_chrome_trace,
    timeline_spans,
    validate_chrome_trace,
    verify_causal_chains,
    write_chrome_trace,
)
from repro.sim import Environment


class _FakeToken:
    """Just enough token surface for the tracer's lifecycle helpers."""

    def __init__(self, tid, level=0, iteration=0, home=0, deps=()):
        self.tid = tid
        self.level = level
        self.iteration = iteration
        self.type_name = f"T-{level + 1}"
        self.home_worker = home
        self.batch = 16
        self.deps = tuple(deps)


def _traced_lifecycle() -> Tracer:
    """A hand-built trace with one complete minted->synced chain."""
    tracer = Tracer()
    tracer.attach_env(Environment())
    token = _FakeToken(0)
    tracer.token_minted(token)
    tracer.token_buffered(token)
    tracer.token_assigned(token, 1)
    tracer.token_trained(token, 1, 0.0, 1.0)
    tracer.token_reported(token, 1)
    tracer.allreduce([0, 1], 100.0, 200.0, 1.0, 2.0, context=(0, 0))
    tracer.level_synced(0, 0, [0, 1], 200.0)
    tracer.transfer(0, 1, 50.0, 0.0, 0.5)
    return tracer


class TestChromeTraceRoundTrip:
    def test_export_parse_same_count_and_order(self, tmp_path):
        tracer = _traced_lifecycle()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(path, tracer.events)
        assert count == len(tracer.events)
        payload = read_chrome_trace(path)
        parsed = complete_events(payload)
        assert len(parsed) == len(tracer.events)
        for original, loaded in zip(tracer.events, parsed):
            assert loaded["name"] == original.name
            assert loaded["cat"] == original.category
            assert loaded["ts"] == pytest.approx(original.start * 1e6)
            assert loaded["dur"] == pytest.approx(original.duration * 1e6)

    def test_metadata_names_tracks(self):
        payload = chrome_trace(_traced_lifecycle().events)
        names = {
            event["args"]["name"]
            for event in payload["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert "token-server" in names
        assert "worker-1" in names

    def test_flow_events_link_token_to_sync(self):
        payload = chrome_trace(_traced_lifecycle().events)
        flows = [
            event
            for event in payload["traceEvents"]
            if event["ph"] in ("s", "t", "f")
        ]
        # 5 lifecycle steps + the sync hop.
        assert len(flows) == 6
        assert flows[0]["ph"] == "s"
        assert flows[-1]["ph"] == "f"
        assert flows[-1]["bp"] == "e"
        assert {flow["id"] for flow in flows} == {0}

    def test_read_rejects_non_object(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ObservabilityError):
            read_chrome_trace(path)


class TestValidation:
    def test_valid_trace_has_no_problems(self):
        payload = chrome_trace(_traced_lifecycle().events)
        assert validate_chrome_trace(payload) == []

    def test_catches_schema_violations(self):
        payload = chrome_trace(_traced_lifecycle().events)
        payload["traceEvents"].append({"ph": "X", "name": "broken"})
        problems = validate_chrome_trace(payload)
        assert problems
        assert any("broken" not in p and "traceEvents" in p for p in problems)

    def test_catches_unknown_phase_and_category(self):
        payload = {
            "traceEvents": [
                {"ph": "Q", "name": "x", "pid": 0, "tid": 0, "ts": 0},
                {
                    "ph": "X", "name": "x", "pid": 0, "tid": 0,
                    "ts": 0, "dur": 1, "cat": "nonsense",
                },
            ]
        }
        problems = validate_chrome_trace(payload)
        assert any("phase" in p for p in problems)
        assert any("category" in p for p in problems)


class TestCausalChains:
    def test_complete_chain_passes(self):
        payload = chrome_trace(_traced_lifecycle().events)
        assert verify_causal_chains(payload) == []

    def test_missing_stage_is_reported(self):
        tracer = Tracer()
        tracer.attach_env(Environment())
        token = _FakeToken(0)
        tracer.token_minted(token)
        tracer.token_buffered(token)  # never assigned/trained/reported
        problems = verify_causal_chains(chrome_trace(tracer.events))
        assert any("complete lifecycle" in p for p in problems)

    def test_missing_sync_is_reported(self):
        tracer = _traced_lifecycle()
        events = [
            event
            for event in tracer.events
            if event.category not in (CAT_SYNC, CAT_NETWORK)
        ]
        problems = verify_causal_chains(chrome_trace(events))
        assert any("synchronization" in p for p in problems)

    def test_empty_trace_is_a_problem(self):
        assert verify_causal_chains({"traceEvents": []})


class TestTimelineSpans:
    def test_maps_trained_and_fetch_only(self):
        tracer = _traced_lifecycle()
        token = _FakeToken(1)
        tracer.fetch(2, token, 3.0, 3.5, 1000.0)
        spans = list(timeline_spans(tracer.events))
        assert (1, "compute", 0.0, 1.0, "T-1") in spans
        assert (2, "fetch", 3.0, 3.5, "T-1") in spans
        kinds = {span[1] for span in spans}
        assert kinds == {"compute", "fetch"}


class TestMetricsCsv:
    def test_header_and_rows(self):
        registry = MetricsRegistry()
        registry.counter("ts.requests").inc(4)
        registry.gauge("net.bytes").set(123.0)
        text = metrics_to_csv(registry)
        lines = text.strip().splitlines()
        assert lines[0] == "metric,kind,labels,field,value"
        assert "net.bytes,gauge,,value,123.0" in lines
        assert "ts.requests,counter,,value,4" in lines


class TestCounterSamples:
    """Sampler gauges exported as Chrome counter ("C") events."""

    def _samples(self):
        from repro.obs import Sample

        return (
            Sample(0.0, "buffer.depth", "0", 2.0),
            Sample(0.0, "buffer.depth", "1", 1.0),
            Sample(0.5, "buffer.depth", "0", 3.0),
            Sample(0.0, "fabric.utilization", "", 0.25),
        )

    def test_samples_become_counter_events(self):
        payload = chrome_trace(
            _traced_lifecycle().events, samples=self._samples()
        )
        counters = [
            event
            for event in payload["traceEvents"]
            if event["ph"] == "C"
        ]
        # One event per distinct (series, tick): two buffer ticks plus
        # one utilization tick.
        assert len(counters) == 3
        by_name = {}
        for event in counters:
            by_name.setdefault(event["name"], []).append(event)
        first = by_name["buffer.depth"][0]
        assert first["ts"] == 0.0
        assert first["args"] == {"0": 2.0, "1": 1.0}
        util = by_name["fabric.utilization"][0]
        assert util["args"] == {"value": 0.25}

    def test_round_trip_with_samples_and_faults_validates(self, tmp_path):
        tracer = _traced_lifecycle()
        tracer.worker_failed(
            0, crash_time=1.0, reclaimed=1, reminted=0
        )
        tracer.worker_joined(3, iteration=1)
        path = tmp_path / "trace.json"
        write_chrome_trace(path, tracer.events, samples=self._samples())
        payload = read_chrome_trace(path)
        assert validate_chrome_trace(payload) == []
        names = {
            event["name"]
            for event in complete_events(payload)
        }
        assert "worker.failed" in names and "worker.joined" in names
        assert sum(
            1 for event in payload["traceEvents"] if event["ph"] == "C"
        ) == 3

    def test_validator_rejects_broken_counters(self):
        payload = {
            "traceEvents": [
                {"ph": "C", "name": "x", "pid": 0, "tid": 0, "ts": 0.0,
                 "args": {}},
                {"ph": "C", "name": "y", "pid": 0, "tid": 0, "ts": 0.0,
                 "args": {"value": "high"}},
                {"ph": "C", "name": "z", "pid": 0, "tid": 0,
                 "args": {"value": 1.0}},
            ]
        }
        problems = validate_chrome_trace(payload)
        assert any("non-empty 'args'" in p for p in problems)
        assert any("not numeric" in p for p in problems)
        assert any("'ts'" in p for p in problems)

    def test_no_samples_means_no_counter_events(self):
        payload = chrome_trace(_traced_lifecycle().events)
        assert all(
            event["ph"] != "C" for event in payload["traceEvents"]
        )
