"""Unit tests for the metrics registry."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("x").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("x")
        gauge.set(5.0)
        gauge.set(2.0)
        assert gauge.value == 2.0


class TestHistogram:
    def test_summary_fields(self):
        histogram = MetricsRegistry().histogram("x")
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        fields = histogram.fields()
        assert fields["count"] == 3
        assert fields["total"] == 6.0
        assert fields["min"] == 1.0
        assert fields["max"] == 3.0
        assert fields["mean"] == 2.0
        assert fields["p50"] == 2.0

    def test_empty_histogram_is_all_zero(self):
        fields = MetricsRegistry().histogram("x").fields()
        assert fields["count"] == 0
        assert fields["mean"] == 0.0

    def test_percentile_fraction_validated(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().histogram("x").percentile(1.5)


class TestRegistry:
    def test_get_or_create_is_label_order_insensitive(self):
        registry = MetricsRegistry()
        a = registry.counter("x", worker=1, level=2)
        b = registry.counter("x", level=2, worker=1)
        assert a is b
        assert len(registry) == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.gauge("x")

    def test_series_maps_one_label(self):
        registry = MetricsRegistry()
        registry.counter("tokens", worker=0).inc(3)
        registry.counter("tokens", worker=1).inc(5)
        registry.counter("other", worker=0).inc(99)
        assert registry.series("tokens", "worker") == {0: 3, 1: 5}

    def test_samples_sorted_and_snapshot_collapses_scalars(self):
        registry = MetricsRegistry()
        registry.gauge("b").set(1.0)
        registry.counter("a", worker=1).inc()
        samples = registry.samples()
        assert [row.name for row in samples] == ["a", "b"]
        snapshot = registry.snapshot()
        assert snapshot["b"] == 1.0
        assert snapshot["a"]["worker=1"] == 1
