"""Functional contract of the sim-time sampler.

Zero perturbation is pinned in ``test_sampler_zero_perturbation``; this
file covers what the sampler *records*: the tick grid, the per-series
content (worker phase, buffer depth, fabric, membership, staleness),
determinism across reruns, and the API's error paths.
"""

import pytest

from repro.core import FelaConfig, FelaRuntime
from repro.errors import ObservabilityError
from repro.faults import FaultController, parse_faults
from repro.hardware import Cluster, ClusterSpec
from repro.obs.timeseries import (
    NULL_SAMPLER,
    PHASE_CODES,
    PHASE_DEAD,
    SER_ACTIVE_WORKERS,
    SER_BUFFER_DEPTH,
    SER_EPOCH,
    SER_FABRIC_FLOWS,
    SER_FABRIC_UTILIZATION,
    SER_STALENESS,
    SER_TOKENS_DONE,
    SER_WORKER_PHASE,
    NullSampler,
    Sample,
    Sampler,
    series_keys,
    series_points,
)
from repro.stragglers import RoundRobinStraggler


def _run_sampled(partition, interval=1.0, straggler=None, faults=None,
                 **kwargs):
    defaults = dict(
        partition=partition,
        total_batch=128,
        num_workers=4,
        weights=(1, 2, 8),
        conditional_subset_size=2,
        iterations=2,
    )
    defaults.update(kwargs)
    config = FelaConfig(**defaults)
    cluster = Cluster(ClusterSpec(num_nodes=config.num_workers))
    sampler = Sampler(interval=interval)
    runtime = FelaRuntime(
        config, cluster, straggler=straggler, faults=faults,
        sampler=sampler,
    )
    return sampler, runtime.run()


class TestNullSampler:
    def test_is_disabled_and_empty(self):
        assert NULL_SAMPLER.enabled is False
        assert NULL_SAMPLER.samples == ()
        NULL_SAMPLER.attach_runtime(object())  # no-op, accepts anything
        NULL_SAMPLER.finish(12.5)
        assert NULL_SAMPLER.samples == ()

    def test_is_a_shared_singleton(self):
        assert isinstance(NULL_SAMPLER, NullSampler)
        assert not isinstance(NULL_SAMPLER, Sampler)


class TestSamplerValidation:
    @pytest.mark.parametrize("interval", [0.0, -1.0])
    def test_rejects_nonpositive_interval(self, interval):
        with pytest.raises(ObservabilityError, match="interval"):
            Sampler(interval=interval)

    def test_rejects_double_attach(self, vgg19_partition):
        sampler = Sampler()
        _run = _run_sampled  # noqa: F841 - clarity
        config = FelaConfig(
            partition=vgg19_partition, total_batch=128, num_workers=4,
            weights=(1, 2, 8), conditional_subset_size=2, iterations=1,
        )
        FelaRuntime(
            config, Cluster(ClusterSpec(num_nodes=4)), sampler=sampler
        )
        with pytest.raises(ObservabilityError, match="already attached"):
            FelaRuntime(
                config, Cluster(ClusterSpec(num_nodes=4)), sampler=sampler
            )

    def test_sample_rejects_unknown_series(self):
        with pytest.raises(ObservabilityError, match="unknown sample"):
            Sample(0.0, "no.such.series", "", 1.0)

    def test_sample_rejects_negative_time(self):
        with pytest.raises(ObservabilityError, match="negative"):
            Sample(-0.5, SER_WORKER_PHASE, "0", 1.0)


class TestSampleContent:
    def test_every_tick_is_rectangular(self, vgg19_partition):
        """Each tick carries one row per worker, per level, and per
        cluster-wide gauge — so consumers never need gap logic."""
        sampler, _ = _run_sampled(vgg19_partition, interval=0.5)
        ticks = sorted({sample.time for sample in sampler.samples})
        per_tick = {tick: [] for tick in ticks}
        for sample in sampler.samples:
            per_tick[sample.time].append(sample)
        levels = 3  # weights (1, 2, 8)
        workers = 4
        for tick in ticks:
            rows = per_tick[tick]
            by_series = {}
            for row in rows:
                by_series.setdefault(row.series, []).append(row)
            assert len(by_series[SER_WORKER_PHASE]) == workers
            assert len(by_series[SER_BUFFER_DEPTH]) == levels
            for series in (
                SER_FABRIC_UTILIZATION,
                SER_FABRIC_FLOWS,
                SER_ACTIVE_WORKERS,
                SER_EPOCH,
                SER_STALENESS,
                SER_TOKENS_DONE,
            ):
                assert len(by_series[series]) == 1

    def test_worker_phases_are_valid_codes(self, vgg19_partition):
        sampler, _ = _run_sampled(vgg19_partition)
        codes = set(PHASE_CODES.values())
        phases = [
            s.value for s in sampler.samples
            if s.series == SER_WORKER_PHASE
        ]
        assert phases
        assert all(value in codes for value in phases)
        # A healthy run leaves the initial all-idle state: at least one
        # non-idle phase must be observed.
        assert any(value != 0.0 for value in phases)

    def test_worker_keys_are_all_wids(self, vgg19_partition):
        sampler, _ = _run_sampled(vgg19_partition)
        assert series_keys(sampler.samples, SER_WORKER_PHASE) == [
            "0", "1", "2", "3",
        ]

    def test_tokens_done_is_monotone_and_ends_at_total(
        self, vgg19_partition
    ):
        sampler, result = _run_sampled(vgg19_partition)
        points = series_points(sampler.samples, SER_TOKENS_DONE)
        values = [value for _, value in points]
        assert values == sorted(values)
        assert values[0] == 0.0
        total_tokens = sum(result.stats["tokens_by_worker"].values())
        assert values[-1] <= total_tokens

    def test_buffer_depth_starts_at_zero_before_minting(
        self, vgg19_partition
    ):
        sampler, _ = _run_sampled(vgg19_partition)
        for level in ("0", "1", "2"):
            points = series_points(
                sampler.samples, SER_BUFFER_DEPTH, key=level
            )
            assert points[0] == (0.0, 0.0)
            # Tokens were buffered at some point during the run.
            assert any(value > 0 for _, value in points) or level != "0"

    def test_staleness_and_utilization_bounds(self, vgg19_partition):
        sampler, _ = _run_sampled(
            vgg19_partition, straggler=RoundRobinStraggler(2.0)
        )
        for _, value in series_points(sampler.samples, SER_STALENESS):
            assert 0 <= value <= 2  # iterations in flight
        for _, value in series_points(
            sampler.samples, SER_FABRIC_UTILIZATION
        ):
            assert 0.0 <= value <= 1.0

    def test_membership_defaults_without_faults(self, vgg19_partition):
        sampler, _ = _run_sampled(vgg19_partition)
        for _, value in series_points(sampler.samples, SER_ACTIVE_WORKERS):
            assert value == 4.0
        for _, value in series_points(sampler.samples, SER_EPOCH):
            assert value == 0.0

    def test_crash_shows_dead_phase_and_shrinks_membership(
        self, vgg19_partition
    ):
        sampler, result = _run_sampled(
            vgg19_partition,
            interval=0.25,
            faults=FaultController(parse_faults("crash:0@1.0")),
            iterations=3,
        )
        dead = PHASE_CODES[PHASE_DEAD]
        w0 = series_points(sampler.samples, SER_WORKER_PHASE, key="0")
        assert any(value == dead for _, value in w0)
        # Once dead, always dead.
        codes = [value for _, value in w0]
        first_dead = codes.index(dead)
        assert all(value == dead for value in codes[first_dead:])
        active = series_points(sampler.samples, SER_ACTIVE_WORKERS)
        assert any(value < 4.0 for _, value in active)
        epochs = [v for _, v in series_points(sampler.samples, SER_EPOCH)]
        assert epochs[-1] >= 1.0
        assert "faults" in result.stats

    def test_samples_are_deterministic_across_reruns(
        self, vgg19_partition
    ):
        first, _ = _run_sampled(
            vgg19_partition, straggler=RoundRobinStraggler(1.0)
        )
        second, _ = _run_sampled(
            vgg19_partition, straggler=RoundRobinStraggler(1.0)
        )
        assert first.samples == second.samples


# -- tick-grid alignment ------------------------------------------------------


class _FakeWorker:
    wid = 0
    tokens_trained = 0
    crashed = False
    phase = "idle"


class _FakeBucket:
    @staticmethod
    def all_tokens():
        return []


class _FakeServer:
    bucket = _FakeBucket()


class _FakeFabric:
    active_flows = ()
    link_bandwidth = 1.0
    num_nodes = 1


class _FakeCluster:
    def __init__(self, env):
        self.env = env
        self.fabric = _FakeFabric()


class _FakeConfig:
    levels = 1
    num_workers = 1


class _FakeRuntime:
    """Just enough runtime surface for ``Sampler._tick`` to snapshot."""

    def __init__(self, env):
        self.cluster = _FakeCluster(env)
        self.workers = [_FakeWorker()]
        self.server = _FakeServer()
        self.config = _FakeConfig()
        self.faults = None
        self._sync_done = {}


def _ticks(sampler):
    return sorted({sample.time for sample in sampler.samples})


class TestTickGridAlignment:
    """Ticks land on k * interval regardless of the env's initial time."""

    def test_attach_at_zero_records_the_t0_tick(self):
        from repro.sim import Environment

        sampler = Sampler(interval=1.0)
        sampler.attach_runtime(_FakeRuntime(Environment()))
        assert _ticks(sampler) == [0.0]

    def test_offgrid_initial_time_waits_for_the_next_boundary(self):
        from repro.sim import Environment

        sampler = Sampler(interval=1.0)
        sampler.attach_runtime(
            _FakeRuntime(Environment(initial_time=2.5))
        )
        # No off-grid sample at 2.5; the first tick is the 3.0 boundary.
        assert sampler.samples == ()
        sampler._on_step(3.2, None)
        assert _ticks(sampler) == [3.0]
        sampler.finish(5.0)
        assert _ticks(sampler) == [3.0, 4.0, 5.0]

    def test_boundary_initial_time_records_once(self):
        from repro.sim import Environment

        sampler = Sampler(interval=1.0)
        sampler.attach_runtime(
            _FakeRuntime(Environment(initial_time=2.0))
        )
        assert _ticks(sampler) == [2.0]
        # A same-time event pop must not record the 2.0 boundary again.
        sampler._on_step(2.0, None)
        assert _ticks(sampler) == [2.0]
        sampler.finish(2.0)
        assert _ticks(sampler) == [2.0]

    def test_run_ending_exactly_on_a_tick_records_it_once(self):
        from repro.sim import Environment

        sampler = Sampler(interval=1.0)
        sampler.attach_runtime(_FakeRuntime(Environment()))
        sampler._on_step(1.0, None)  # event pops exactly on the tick
        assert _ticks(sampler) == [0.0, 1.0]
        sampler.finish(1.0)  # run ends on the same tick
        assert _ticks(sampler) == [0.0, 1.0]
        assert len(
            [s for s in sampler.samples if s.time == 1.0]
        ) == len([s for s in sampler.samples if s.time == 0.0])

    def test_finish_flushes_a_trailing_boundary_once(self):
        from repro.sim import Environment

        sampler = Sampler(interval=1.0)
        sampler.attach_runtime(_FakeRuntime(Environment()))
        sampler._on_step(0.4, None)  # last event before the run ends
        sampler.finish(1.0)
        assert _ticks(sampler) == [0.0, 1.0]
