"""The sampler must be invisible to the schedule, and free when off.

Reuses the five pre-fault ``total_time`` pins: a sampled run must land
on *bit-identical* times (the sampler only reads state from a step
monitor; it never schedules events), and an unsampled run must touch no
sampler machinery at all beyond the shared null object.
"""

import pytest

from repro.core import FelaRuntime
from repro.hardware import Cluster, ClusterSpec
from repro.obs.timeseries import NULL_SAMPLER, Sampler

from tests.faults.test_zero_perturbation import CASES, PINNED, _config


def _run(partition, cls, straggler, sampler, **kwargs):
    cluster = Cluster(ClusterSpec(num_nodes=8))
    runtime = cls(
        _config(partition, **kwargs),
        cluster,
        straggler=straggler,
        sampler=sampler,
    )
    return runtime, runtime.run()


@pytest.mark.parametrize("name", sorted(CASES))
def test_sampled_total_time_is_bit_identical(name, vgg19_partition):
    cls, make_straggler, kwargs = CASES[name]
    sampler = Sampler(interval=0.5)
    _, result = _run(
        vgg19_partition, cls, make_straggler(), sampler, **kwargs
    )
    assert repr(result.total_time) == PINNED[name]
    assert len(sampler.samples) > 0


@pytest.mark.parametrize("name", sorted(CASES))
def test_sampling_covers_the_whole_run(name, vgg19_partition):
    cls, make_straggler, kwargs = CASES[name]
    sampler = Sampler(interval=1.0)
    _, result = _run(
        vgg19_partition, cls, make_straggler(), sampler, **kwargs
    )
    times = sorted({sample.time for sample in sampler.samples})
    assert times[0] == 0.0
    # finish() flushes the trailing ticks: the last tick is within one
    # interval of the end of the run, and no tick lies past it.
    assert result.total_time - times[-1] < 1.0
    assert times[-1] <= result.total_time
    # Ticks are exactly the k * interval grid — no gaps, no extras.
    assert times == [float(k) for k in range(len(times))]


def test_disabled_sampling_constructs_no_sampler_objects(vgg19_partition):
    cluster = Cluster(ClusterSpec(num_nodes=8))
    runtime = FelaRuntime(_config(vgg19_partition), cluster)
    assert runtime.sampler is NULL_SAMPLER
    assert runtime.sampler.enabled is False
    # No monitor registered: the simulation run loop takes the
    # monitor-free fast path.
    assert cluster.env._monitors == []
    runtime.run()
    assert runtime.sampler.samples == ()
