"""Table II: the static matrix, cross-checked against the implementation."""

from repro.harness import TABLE_II, render_table_ii


class TestMatrixContents:
    def test_seven_solutions(self):
        assert len(TABLE_II) == 7
        assert [row.solution for row in TABLE_II] == [
            "LazyTable",
            "FlexRR",
            "FlexPS",
            "PipeDream",
            "ElasticPipe",
            "Stanza",
            "Fela",
        ]

    def test_fela_checks_every_dimension(self):
        fela = TABLE_II[-1]
        assert fela.flexible_parallelism
        assert fela.straggler_mitigation
        assert fela.communication_efficiency
        assert fela.work_conservation
        assert fela.algorithm_reproducibility
        assert fela.parallel_mode == "Hybrid-Parallel"

    def test_no_other_solution_checks_everything(self):
        for row in TABLE_II[:-1]:
            assert not all(
                (
                    row.flexible_parallelism,
                    row.straggler_mitigation,
                    row.communication_efficiency,
                    row.work_conservation,
                    row.algorithm_reproducibility,
                )
            )

    def test_render_includes_all_rows(self):
        text = render_table_ii()
        for row in TABLE_II:
            assert row.solution in text


class TestFelaRowBackedByImplementation:
    """The Fela row's claims are properties of this codebase."""

    def test_flexible_parallelism_is_real(self, vgg19_partition):
        """Different sub-models really train with different batch sizes."""
        from repro.core import FelaConfig

        config = FelaConfig(
            partition=vgg19_partition,
            total_batch=128,
            num_workers=8,
            weights=(1, 2, 4),
        )
        assert len(set(config.token_batches())) > 1

    def test_reproducibility_is_real(self, vgg19_partition):
        """BSP + deterministic simulation: identical reruns."""
        from repro.core import FelaConfig, FelaRuntime

        def run():
            config = FelaConfig(
                partition=vgg19_partition,
                total_batch=128,
                num_workers=8,
                weights=(1, 2, 4),
                iterations=2,
            )
            return FelaRuntime(config).run().total_time

        assert run() == run()
