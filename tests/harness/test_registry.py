"""Tests for the artifact registry: completeness and truthfulness."""

import pathlib

import pytest

from repro.errors import ConfigurationError
from repro.harness import (
    REGISTRY,
    ExperimentRunner,
    generate_artifact,
    get_artifact,
    paper_artifacts,
)

BENCH_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"


class TestCompleteness:
    def test_every_paper_artifact_present(self):
        ids = {a.artifact_id for a in paper_artifacts()}
        # Every table and figure of the paper's evaluation.
        expected = {
            "table1", "fig1", "table2", "fig5", "fig6", "fig7",
            "fig8-vgg19", "fig8-googlenet", "fig9-vgg19",
            "fig9-googlenet", "fig10-vgg19", "fig10-googlenet",
        }
        assert expected <= ids

    def test_benchmarks_exist_on_disk(self):
        for artifact in REGISTRY:
            assert (BENCH_DIR / artifact.benchmark).exists(), (
                artifact.artifact_id
            )

    def test_ids_unique(self):
        ids = [a.artifact_id for a in REGISTRY]
        assert len(set(ids)) == len(ids)

    def test_unknown_artifact_rejected(self):
        with pytest.raises(ConfigurationError):
            get_artifact("fig99")


class TestGeneration:
    def test_static_artifacts_render(self):
        runner = ExperimentRunner()
        for artifact_id in ("table1", "fig1", "table2", "fig5"):
            text = generate_artifact(artifact_id, runner=runner)
            assert isinstance(text, str)
            assert text.strip()

    def test_dynamic_artifact_renders(self):
        runner = ExperimentRunner()
        text = generate_artifact(
            "fig8-googlenet", runner=runner, iterations=2
        )
        assert "FELA" in text

    def test_bench_only_artifact_points_at_benchmark(self):
        with pytest.raises(ConfigurationError, match="benchmark"):
            generate_artifact("ext-ssp")
