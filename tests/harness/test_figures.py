"""Tests for the per-figure generators (small iteration counts)."""

import pytest

from repro.harness import (
    ExperimentRunner,
    fig1,
    fig5,
    fig6,
    fig8,
    fig9,
    fig10,
    table1,
)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


class TestStaticFigures:
    def test_table1_cross_checks_zoo(self):
        result = table1()
        rows = {name: zoo for name, _, _, zoo in result.rows}
        assert rows["VGG19"] == 19
        assert rows["ResNet-152"] == 152
        assert rows["CUImage"] == "-"
        assert "Table I" in result.render()

    def test_fig1_reproduces_paper_knees(self):
        result = fig1()
        assert result.thresholds["CONV (64,64,224,224)"] == 16
        assert result.thresholds["CONV (512,512,14,14)"] == 64
        assert result.thresholds["FC (4096,4096)"] == 2048

    def test_fig1_series_shapes(self):
        result = fig1()
        for name, xs, ys in result.series:
            assert len(xs) == len(ys)
            # Throughput is non-decreasing then flat.
            assert list(ys) == sorted(ys)

    def test_fig5_layer_ordering(self):
        result = fig5()
        assert len(result.layer_names) == 19
        assert result.layer_names[0] == "conv1"
        assert result.layer_names[-1] == "fc3"
        assert "SM-1" in result.paper_partition_desc


class TestDynamicFigures:
    def test_fig6_reports_gaps(self, runner):
        result = fig6(batches=(128,), runner=runner)
        tuning = result.tunings[128]
        assert len(tuning.cases) == 13
        assert "phase1" in result.render()

    def test_fig8_fela_wins_on_vgg19(self, runner):
        result = fig8(
            "vgg19", batches=(128, 256), iterations=3, runner=runner
        )
        for batch in (128, 256):
            fela = result.throughput("fela", batch)
            for kind in ("dp", "mp", "hp"):
                assert fela > result.throughput(kind, batch)
        text = result.render()
        assert "Fela vs DP" in text

    def test_fig9_pid_ordering(self, runner):
        result = fig9(
            "vgg19",
            delays=(6.0,),
            iterations=4,
            runner=runner,
            kinds=("fela", "dp"),
            total_batch=128,
        )
        # Fela's per-iteration delay is far below DP's.
        assert result.pid("fela", 6.0) < 0.5 * result.pid("dp", 6.0)
        assert result.throughput("fela", 6.0) > result.throughput("dp", 6.0)

    def test_fig10_pid_grows_with_probability(self, runner):
        result = fig10(
            "vgg19",
            probabilities=(0.1, 0.5),
            iterations=4,
            runner=runner,
            kinds=("fela",),
            total_batch=128,
        )
        assert result.pid("fela", 0.5) > result.pid("fela", 0.1)

    def test_render_includes_axis(self, runner):
        result = fig10(
            "vgg19",
            probabilities=(0.2,),
            iterations=2,
            runner=runner,
            kinds=("fela",),
            total_batch=128,
        )
        assert "probability" in result.render()
