"""Unit tests for text rendering helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.harness import format_speedup, render_series, render_table


class TestRenderTable:
    def test_basic_alignment(self):
        text = render_table(["A", "Bee"], [["x", 1], ["long", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert "Bee" in lines[0]
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_title_prepended(self):
        text = render_table(["A"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table(["A", "B"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table([], [])

    def test_float_formatting(self):
        text = render_table(["v"], [[1234.5], [12.34], [0.1234]])
        assert "1,234" in text or "1,235" in text
        assert "12.3" in text
        assert "0.123" in text


class TestRenderSeries:
    def test_points_rendered(self):
        text = render_series("s", [1, 2], [10.0, 20.0])
        assert text.startswith("s:")
        assert "(1, 10.0)" in text
        assert "(2, 20.0)" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series("s", [1], [1.0, 2.0])


class TestFormatSpeedup:
    def test_percent_below_2x(self):
        assert format_speedup(1.17) == "17.0%"

    def test_multiplier_from_2x(self):
        assert format_speedup(3.23) == "3.23x"
        assert format_speedup(2.0) == "2.00x"

    def test_slowdown_negative(self):
        assert format_speedup(0.9).startswith("-")
