"""Detail tests for figure result objects and edge cases."""

import pytest

from repro.harness import (
    ExperimentRunner,
    ExperimentSpec,
    fig9,
    probe_layer,
)
from repro.harness.figures import STRAGGLER_BATCH
from repro.hardware import ClusterSpec


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


class TestProbeLayers:
    def test_probe_shapes_match_paper(self):
        front = probe_layer("conv_front").layers[0]
        assert front.in_shape == (64, 224, 224)
        back = probe_layer("conv_back").layers[0]
        assert back.in_shape == (512, 14, 14)
        fc = probe_layer("fc").layers[0]
        assert fc.shape_signature == ("fc", 4096, 4096)

    def test_unknown_probe_rejected(self):
        with pytest.raises(ValueError):
            probe_layer("transformer")


class TestExperimentSpec:
    def test_default_cluster_spec_matches_workers(self):
        spec = ExperimentSpec(model_name="vgg19", total_batch=128,
                              num_workers=4)
        assert spec.resolved_cluster_spec().num_nodes == 4

    def test_explicit_cluster_spec_wins(self):
        cluster_spec = ClusterSpec(num_nodes=8, latency=0.0)
        spec = ExperimentSpec(
            model_name="vgg19",
            total_batch=128,
            cluster_spec=cluster_spec,
        )
        assert spec.resolved_cluster_spec() is cluster_spec

    def test_specs_are_hashable_for_caching(self):
        a = ExperimentSpec(model_name="vgg19", total_batch=128)
        b = ExperimentSpec(model_name="vgg19", total_batch=128)
        assert a == b
        assert hash(a) == hash(b)


class TestStragglerResultDetails:
    @pytest.fixture(scope="class")
    def result(self, runner):
        return fig9(
            "vgg19",
            delays=(6.0,),
            iterations=4,
            runner=runner,
            kinds=("fela", "dp"),
            total_batch=128,
        )

    def test_default_straggler_batches_allow_stealing(self, runner):
        """VGG19 needs >= 2 T-1 tokens per worker (its delays can be
        shorter than an iteration, so helpers must find surplus tokens);
        GoogLeNet's saturation thresholds floor n_1 at N, which is enough
        because the paper's delays exceed its iteration time."""
        vgg_config = runner.fela_config(
            ExperimentSpec(
                model_name="vgg19", total_batch=STRAGGLER_BATCH["vgg19"]
            )
        )
        assert (
            vgg_config.token_counts()[0] >= 2 * vgg_config.num_workers
        )
        goog_config = runner.fela_config(
            ExperimentSpec(
                model_name="googlenet",
                total_batch=STRAGGLER_BATCH["googlenet"],
            )
        )
        assert (
            goog_config.token_counts()[0] >= goog_config.num_workers
        )

    def test_pid_reduction_range_bounds(self, result):
        lo, hi = result.pid_reduction_range("dp")
        assert lo <= hi
        assert hi <= 1.0

    def test_render_contains_speedups(self, result):
        text = result.render()
        assert "Fela AT vs DP" in text
        assert "round-robin" in text

    def test_baselines_are_non_straggler_runs(self, result):
        for kind in ("fela", "dp"):
            baseline = result.baselines[kind]
            slowed = result.results[kind][6.0]
            assert baseline.total_time <= slowed.total_time
