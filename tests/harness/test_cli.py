"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_batches, parse_straggler
from repro.errors import ConfigurationError
from repro.stragglers import (
    NoStraggler,
    ProbabilityStraggler,
    RoundRobinStraggler,
)


class TestParsers:
    def test_straggler_none(self):
        assert isinstance(parse_straggler(None), NoStraggler)
        assert isinstance(parse_straggler("none"), NoStraggler)

    def test_straggler_round_robin(self):
        injector = parse_straggler("rr:6")
        assert isinstance(injector, RoundRobinStraggler)
        assert injector.delay == 6.0

    def test_straggler_probability(self):
        injector = parse_straggler("prob:0.3:6")
        assert isinstance(injector, ProbabilityStraggler)
        assert injector.probability == 0.3
        assert injector.delay == 6.0

    def test_straggler_garbage_rejected(self):
        for bad in ("rr", "rr:x", "prob:0.3", "what:1:2"):
            with pytest.raises(ConfigurationError):
                parse_straggler(bad)

    def test_batches(self):
        assert parse_batches("64,128") == [64, 128]
        with pytest.raises(ConfigurationError):
            parse_batches("64,abc")
        with pytest.raises(ConfigurationError):
            parse_batches("")


class TestCommands:
    def test_list_models(self, capsys):
        assert main(["list-models"]) == 0
        out = capsys.readouterr().out
        assert "vgg19" in out
        assert "googlenet" in out

    def test_profile(self, capsys):
        assert main(["profile", "vgg19"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out and "fc3" in out

    def test_partition(self, capsys):
        assert main(["partition", "vgg19"]) == 0
        out = capsys.readouterr().out
        assert "SM-1" in out
        assert "Paper partition" in out

    def test_partition_without_paper_split(self, capsys):
        assert main(["partition", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "no published partition" in out

    def test_run_dp(self, capsys):
        code = main(
            ["run", "vgg19", "--runtime", "dp", "--batch", "128",
             "--iterations", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "AT (samples/s)" in out

    def test_run_fela_with_straggler(self, capsys):
        code = main(
            ["run", "vgg19", "--batch", "128", "--iterations", "2",
             "--straggler", "rr:4"]
        )
        assert code == 0

    def test_unknown_model_is_clean_error(self, capsys):
        assert main(["profile", "nonexistent"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_tune(self, capsys):
        code = main(
            ["tune", "vgg19", "--batch", "128",
             "--profile-iterations", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best: weights=" in out

    def test_compare(self, capsys):
        code = main(
            ["compare", "vgg19", "--batches", "128", "--iterations", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FELA" in out and "DP" in out
