"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_batches, parse_straggler
from repro.errors import ConfigurationError
from repro.stragglers import (
    NoStraggler,
    ProbabilityStraggler,
    RoundRobinStraggler,
)


class TestParsers:
    def test_straggler_none(self):
        assert isinstance(parse_straggler(None), NoStraggler)
        assert isinstance(parse_straggler("none"), NoStraggler)

    def test_straggler_round_robin(self):
        injector = parse_straggler("rr:6")
        assert isinstance(injector, RoundRobinStraggler)
        assert injector.delay == 6.0

    def test_straggler_probability(self):
        injector = parse_straggler("prob:0.3:6")
        assert isinstance(injector, ProbabilityStraggler)
        assert injector.probability == 0.3
        assert injector.delay == 6.0

    def test_straggler_garbage_rejected(self):
        for bad in ("rr", "rr:x", "prob:0.3", "what:1:2"):
            with pytest.raises(ConfigurationError):
                parse_straggler(bad)

    def test_batches(self):
        assert parse_batches("64,128") == [64, 128]
        with pytest.raises(ConfigurationError):
            parse_batches("64,abc")
        with pytest.raises(ConfigurationError):
            parse_batches("")


class TestCommands:
    def test_list_models(self, capsys):
        assert main(["list-models"]) == 0
        out = capsys.readouterr().out
        assert "vgg19" in out
        assert "googlenet" in out

    def test_profile(self, capsys):
        assert main(["profile", "vgg19"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out and "fc3" in out

    def test_partition(self, capsys):
        assert main(["partition", "vgg19"]) == 0
        out = capsys.readouterr().out
        assert "SM-1" in out
        assert "Paper partition" in out

    def test_partition_without_paper_split(self, capsys):
        assert main(["partition", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "no published partition" in out

    def test_run_dp(self, capsys):
        code = main(
            ["run", "vgg19", "--runtime", "dp", "--batch", "128",
             "--iterations", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "AT (samples/s)" in out

    def test_run_fela_with_straggler(self, capsys):
        code = main(
            ["run", "vgg19", "--batch", "128", "--iterations", "2",
             "--straggler", "rr:4"]
        )
        assert code == 0

    def test_unknown_model_is_clean_error(self, capsys):
        assert main(["profile", "nonexistent"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_tune(self, capsys):
        code = main(
            ["tune", "vgg19", "--batch", "128",
             "--profile-iterations", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best: weights=" in out

    def test_compare(self, capsys):
        code = main(
            ["compare", "vgg19", "--batches", "128", "--iterations", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FELA" in out and "DP" in out

    def test_tune_prints_search_diagnostics(self, capsys):
        code = main(
            ["tune", "vgg19", "--batch", "128",
             "--profile-iterations", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "case measurements" in out
        assert "candidates pruned" in out
        assert "cache hits" in out

    def test_tune_exhaustive_flag(self, capsys):
        code = main(
            ["tune", "vgg19", "--batch", "128",
             "--profile-iterations", "1", "--exhaustive"]
        )
        assert code == 0
        assert "exhaustive phase 1" in capsys.readouterr().out


class TestSweepFlags:
    @staticmethod
    def best_line(out):
        # Winner + measured time only: the trailing gap percentages
        # summarize the profiled case set, which halving legitimately
        # shrinks.
        line = next(
            line for line in out.splitlines()
            if line.startswith("best: weights=")
        )
        return line.split("gaps:")[0].strip()

    def test_parallel_tune_matches_serial_exhaustive(self, capsys):
        # The CI smoke in .github/workflows/ci.yml re-runs this exact
        # comparison from the shell.
        assert main(
            ["tune", "vgg19", "--batch", "128",
             "--profile-iterations", "2", "--jobs", "1", "--exhaustive"]
        ) == 0
        serial = self.best_line(capsys.readouterr().out)
        assert main(
            ["tune", "vgg19", "--batch", "128",
             "--profile-iterations", "2", "--jobs", "2"]
        ) == 0
        parallel = self.best_line(capsys.readouterr().out)
        assert parallel == serial

    def test_jobs_must_be_positive(self, capsys):
        assert main(
            ["tune", "vgg19", "--batch", "128", "--jobs", "0"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_oversubscribed_jobs_warns_and_caps(self, capsys):
        import os

        huge = str((os.cpu_count() or 1) + 7)
        code = main(
            ["tune", "vgg19", "--batch", "128",
             "--profile-iterations", "1", "--jobs", huge]
        )
        assert code == 0
        assert "capping" in capsys.readouterr().err


class TestCacheCommand:
    def run_tune(self):
        assert main(
            ["tune", "vgg19", "--batch", "128",
             "--profile-iterations", "1"]
        ) == 0

    def test_stats_and_ls_after_tune(self, capsys):
        self.run_tune()
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        stats_out = capsys.readouterr().out
        assert "entries" in stats_out
        assert main(["cache", "ls"]) == 0
        ls_out = capsys.readouterr().out
        assert "Bytes" in ls_out

    def test_clear_empties_the_store(self, capsys):
        self.run_tune()
        capsys.readouterr()
        assert main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "ls"]) == 0
        assert "(cache is empty)" in capsys.readouterr().out

    def test_no_cache_flag_keeps_store_empty(self, capsys):
        assert main(
            ["tune", "vgg19", "--batch", "128",
             "--profile-iterations", "1", "--no-cache"]
        ) == 0
        capsys.readouterr()
        assert main(["cache", "ls"]) == 0
        assert "(cache is empty)" in capsys.readouterr().out
