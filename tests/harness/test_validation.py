"""Simulator-vs-closed-form verification tests."""

import pytest

from repro.baselines import DataParallel, ModelParallel
from repro.core import ring_allreduce
from repro.hardware import Cluster, ClusterSpec
from repro.harness.validation import (
    predict_dp_compute,
    predict_dp_iteration,
    predict_pipeline_flush,
    predict_ring_allreduce,
    relative_error,
)
from repro.stragglers import RoundRobinStraggler


class TestRingAllreducePrediction:
    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_matches_simulation(self, workers):
        spec = ClusterSpec(num_nodes=workers)
        cluster = Cluster(spec)
        size = 500e6
        done = []

        def proc():
            yield from ring_allreduce(
                cluster, list(range(workers)), size
            )
            done.append(cluster.env.now)

        cluster.env.process(proc())
        cluster.env.run()
        predicted = predict_ring_allreduce(workers, size, spec)
        assert relative_error(done[0], predicted) < 0.01

    def test_degenerate_cases(self):
        spec = ClusterSpec()
        assert predict_ring_allreduce(1, 1e9, spec) == 0.0
        assert predict_ring_allreduce(8, 0, spec) == 0.0


class TestDataParallelPrediction:
    @pytest.mark.parametrize("batch", [128, 512, 1024])
    def test_iteration_time_matches(self, vgg19, batch):
        spec = ClusterSpec(num_nodes=8)
        result = DataParallel(
            vgg19, batch, 8, iterations=3, cluster=Cluster(spec)
        ).run()
        predicted = predict_dp_iteration(vgg19, batch, 8, spec)
        assert relative_error(result.mean_iteration_time, predicted) < 0.02

    def test_straggler_adds_exactly_the_delay(self, vgg19):
        spec = ClusterSpec(num_nodes=8)
        d = 5.0
        result = DataParallel(
            vgg19,
            128,
            8,
            iterations=3,
            cluster=Cluster(spec),
            straggler=RoundRobinStraggler(d),
        ).run()
        predicted = predict_dp_iteration(
            vgg19, 128, 8, spec, max_start_delay=d
        )
        assert relative_error(result.mean_iteration_time, predicted) < 0.02

    def test_accumulation_accounted(self, vgg19):
        """At 128 samples/worker the K40c must chunk: the prediction and
        the simulation agree on the accumulation penalty."""
        spec = ClusterSpec(num_nodes=8)
        single_pass = spec.gpu.train_time(vgg19.layers, 128)
        accumulated = predict_dp_compute(vgg19, 128, spec)
        assert accumulated > single_pass  # extra saturation floors
        result = DataParallel(
            vgg19, 1024, 8, iterations=2, cluster=Cluster(spec)
        ).run()
        predicted = predict_dp_iteration(vgg19, 1024, 8, spec)
        assert relative_error(result.mean_iteration_time, predicted) < 0.02


class TestPipelinePrediction:
    def test_flush_formula_is_a_lower_bound(self, vgg19):
        spec = ClusterSpec(num_nodes=8)
        mp = ModelParallel(
            vgg19, 256, 8, iterations=2, cluster=Cluster(spec)
        )
        result = mp.run()
        stage_times = [
            sum(
                spec.gpu.layer_train_time(p, mp.micro_batch)
                for p in stage
            )
            for stage in mp.stages
        ]
        bound = predict_pipeline_flush(
            stage_times, len(mp.micro_batches())
        )
        # The simulated pipeline also pays transfers: the closed form
        # bounds it from below but stays within the right magnitude.
        assert result.mean_iteration_time >= 0.5 * bound
        assert result.mean_iteration_time < 3.0 * bound

    def test_degenerate(self):
        assert predict_pipeline_flush([], 4) == 0.0
        assert predict_pipeline_flush([1.0], 0) == 0.0


class TestRelativeError:
    def test_zero_cases(self):
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == float("inf")

    def test_symmetric_magnitude(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
