"""Tests for the ASCII chart renderers."""

import pytest

from repro.errors import ConfigurationError
from repro.harness import bar_chart, line_chart


class TestLineChart:
    def test_basic_render_structure(self):
        chart = line_chart(
            {"a": [(1, 1.0), (2, 2.0), (4, 4.0)]},
            width=20,
            height=6,
            title="T",
        )
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert any("o" in line for line in lines)  # series glyph
        assert any("+" in line and "-" in line for line in lines)  # axis
        assert "o=a" in lines[-1]

    def test_multiple_series_distinct_glyphs(self):
        chart = line_chart(
            {
                "first": [(1, 1.0)],
                "second": [(2, 2.0)],
            },
            width=20,
            height=6,
        )
        assert "o=first" in chart
        assert "x=second" in chart

    def test_extremes_are_labelled(self):
        chart = line_chart(
            {"a": [(0, 5.0), (10, 125.0)]}, width=20, height=6
        )
        assert "125" in chart
        assert "5" in chart

    def test_log_x_requires_positive(self):
        with pytest.raises(ConfigurationError):
            line_chart({"a": [(0, 1.0)]}, log_x=True)

    def test_constant_series_does_not_crash(self):
        chart = line_chart({"a": [(1, 3.0), (2, 3.0)]}, width=20, height=6)
        assert "o" in chart

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            line_chart({})
        with pytest.raises(ConfigurationError):
            line_chart({"a": [(1, 1.0)]}, width=4)
        too_many = {str(i): [(1, 1.0)] for i in range(20)}
        with pytest.raises(ConfigurationError):
            line_chart(too_many)


class TestBarChart:
    def test_bars_proportional(self):
        chart = bar_chart({"big": 100.0, "small": 25.0}, width=40)
        lines = chart.splitlines()
        big = next(line for line in lines if line.strip().startswith("big"))
        small = next(
            line for line in lines if line.strip().startswith("small")
        )
        assert big.count("#") == 40
        assert small.count("#") == 10

    def test_zero_value_has_no_bar(self):
        chart = bar_chart({"a": 10.0, "b": 0.0})
        line_b = next(
            line for line in chart.splitlines()
            if line.strip().startswith("b ") or line.strip().startswith("b|")
            or line.lstrip().startswith("b")
        )
        assert "#" not in line_b

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart({"a": -1.0})

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart({})


class TestFigureChartIntegration:
    def test_fig1_chart(self):
        from repro.harness import fig1

        chart = fig1().render_chart()
        assert "log x" in chart
        assert "FC (4096,4096)" in chart

    def test_fig8_chart(self):
        from repro.harness import ExperimentRunner, fig8

        result = fig8(
            "vgg19",
            batches=(128, 256),
            iterations=2,
            runner=ExperimentRunner(),
            kinds=("fela", "dp"),
        )
        chart = result.render_chart()
        assert "FELA" in chart
        assert "DP" in chart
