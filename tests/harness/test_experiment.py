"""Tests for the experiment runner (caching, unified running)."""

import pytest

from repro.errors import ConfigurationError
from repro.harness import ExperimentRunner, ExperimentSpec


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


@pytest.fixture(scope="module")
def spec():
    return ExperimentSpec(
        model_name="vgg19", total_batch=128, iterations=2
    )


class TestCaching:
    def test_model_cached(self, runner):
        assert runner.model("vgg19") is runner.model("vgg19")

    def test_partition_uses_paper_split_when_available(self, runner):
        partition = runner.partition("vgg19")
        assert [len(sm.trainable_layers) for sm in partition] == [8, 8, 3]

    def test_partition_falls_back_to_bins(self, runner):
        partition = runner.partition("alexnet")
        assert len(partition) >= 1

    def test_tuning_cached(self, runner, spec):
        first = runner.tuning(spec)
        second = runner.tuning(spec)
        assert first is second


class TestRunning:
    def test_run_each_kind(self, runner, spec):
        for kind in ("fela", "dp", "mp", "hp"):
            result = runner.run(kind, spec)
            assert result.runtime_name == kind
            assert result.iterations == 2
            assert result.average_throughput > 0

    def test_unknown_kind_rejected(self, runner, spec):
        with pytest.raises(ConfigurationError):
            runner.run("zen", spec)

    def test_run_all(self, runner, spec):
        results = runner.run_all(spec, kinds=("fela", "dp"))
        assert set(results) == {"fela", "dp"}

    def test_fela_config_uses_tuning(self, runner, spec):
        tuning = runner.tuning(spec)
        config = runner.fela_config(spec)
        assert config.weights == tuning.best_weights
        assert config.conditional_subset_size == tuning.best_subset_size

    def test_fela_override(self, runner, spec):
        result = runner.run("fela", spec, hf_enabled=False)
        assert result.average_throughput > 0
