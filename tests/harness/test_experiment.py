"""Tests for the experiment runner (caching, unified running)."""

import pytest

from repro.errors import ConfigurationError
from repro.exec import ResultCache
from repro.harness import ExperimentRunner, ExperimentSpec, RunRequest


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


@pytest.fixture(scope="module")
def spec():
    return ExperimentSpec(
        model_name="vgg19", total_batch=128, iterations=2
    )


class TestCaching:
    def test_model_cached(self, runner):
        assert runner.model("vgg19") is runner.model("vgg19")

    def test_partition_uses_paper_split_when_available(self, runner):
        partition = runner.partition("vgg19")
        assert [len(sm.trainable_layers) for sm in partition] == [8, 8, 3]

    def test_partition_falls_back_to_bins(self, runner):
        partition = runner.partition("alexnet")
        assert len(partition) >= 1

    def test_tuning_cached(self, runner, spec):
        first = runner.tuning(spec)
        second = runner.tuning(spec)
        assert first is second


class TestRunning:
    def test_run_each_kind(self, runner, spec):
        for kind in ("fela", "dp", "mp", "hp"):
            result = runner.run(kind, spec)
            assert result.runtime_name == kind
            assert result.iterations == 2
            assert result.average_throughput > 0

    def test_unknown_kind_rejected(self, runner, spec):
        with pytest.raises(ConfigurationError):
            runner.run("zen", spec)

    def test_run_all(self, runner, spec):
        results = runner.run_all(spec, kinds=("fela", "dp"))
        assert set(results) == {"fela", "dp"}

    def test_fela_config_uses_tuning(self, runner, spec):
        tuning = runner.tuning(spec)
        config = runner.fela_config(spec)
        assert config.weights == tuning.best_weights
        assert config.conditional_subset_size == tuning.best_subset_size

    def test_fela_override(self, runner, spec):
        result = runner.run("fela", spec, hf_enabled=False)
        assert result.average_throughput > 0

    def test_run_many_matches_individual_runs(self, runner, spec):
        requests = [
            RunRequest("dp", spec),
            RunRequest("fela", spec),
            RunRequest("fela", spec, overrides=(("hf_enabled", False),)),
        ]
        batched = runner.run_many(requests)
        assert batched[0] == runner.run("dp", spec)
        assert batched[1] == runner.run("fela", spec)
        assert batched[2] == runner.run("fela", spec, hf_enabled=False)


class TestPersistentCache:
    def test_second_runner_runs_zero_new_simulations(
        self, tmp_path, spec
    ):
        cache_dir = tmp_path / "cache"
        warm = ExperimentRunner(cache=ResultCache(cache_dir))
        warm_results = warm.run_all(spec, kinds=("fela", "dp"))
        assert warm.cache.stores > 0

        fresh = ExperimentRunner(cache=ResultCache(cache_dir))
        fresh_results = fresh.run_all(spec, kinds=("fela", "dp"))
        # Every tuning case, the tuning result, and both runs came off
        # disk: nothing was simulated, and the outputs are identical.
        assert fresh.cache.misses == 0
        assert fresh.cache.stores == 0
        assert fresh.executor.jobs_executed == 0
        assert fresh_results == warm_results

    def test_cached_rerun_is_byte_identical(self, tmp_path, spec):
        cache_dir = tmp_path / "cache"
        cold = ExperimentRunner(cache=ResultCache(cache_dir)).run(
            "fela", spec
        )
        cached = ExperimentRunner(cache=ResultCache(cache_dir)).run(
            "fela", spec
        )
        assert cached == cold
        assert repr(cached) == repr(cold)

    def test_memory_only_runner_touches_no_disk(self, spec):
        runner = ExperimentRunner()
        runner.run("dp", spec)
        assert runner.cache.directory is None
