"""Crash-recovery integration tests: seeded failures mid-run.

Every test runs with the :class:`InvariantChecker` attached, so token
conservation across reclaim / re-mint / invalidate is verified at every
lifecycle transition — a silent checker *is* the core assertion.
"""

import json

from repro.analysis.invariants import InvariantChecker
from repro.core import FelaConfig, FelaRuntime, PipelinedFelaRuntime
from repro.faults import FaultController, parse_faults
from repro.hardware import Cluster, ClusterSpec
from repro.obs import (
    EV_TOKEN_RECLAIMED,
    EV_TOKEN_REMINTED,
    EV_WORKER_FAILED,
    Tracer,
    chrome_trace,
    validate_chrome_trace,
)

ITERATIONS = 2


def run_faulted(
    partition,
    spec,
    cls=FelaRuntime,
    nodes=8,
    iterations=ITERATIONS,
    cluster_spec=None,
    lease_timeout=0.25,
    tracer=None,
    **config_kwargs,
):
    config = FelaConfig(
        partition=partition,
        total_batch=128,
        num_workers=8,
        weights=(1, 2, 8),
        conditional_subset_size=2,
        iterations=iterations,
        **config_kwargs,
    )
    cluster = Cluster(cluster_spec or ClusterSpec(num_nodes=nodes))
    faults = FaultController(
        parse_faults(spec), lease_timeout=lease_timeout
    )
    runtime = cls(
        config,
        cluster,
        tracer=tracer,
        invariants=InvariantChecker(),
        faults=faults,
    )
    return runtime.run()


class TestCrashRecovery:
    def test_mid_token_crash_reclaims_and_completes(self, vgg19_partition):
        result = run_faulted(vgg19_partition, "crash:3@2.0", iterations=4)
        assert len(result.records) == 4
        summary = result.stats["faults"]
        assert summary["final_states"][3] == "failed"
        assert summary["tokens_reclaimed"] >= 1
        [failure] = summary["failures"]
        assert failure["wid"] == 3
        assert failure["crash_time"] == 2.0
        # Lease detection: the monitor fires within two lease periods.
        assert 0.0 < failure["detection_seconds"] <= 0.5

    def test_crash_losing_activations_reminted(self, vgg19_partition):
        # At t=1.0 worker 0 holds completed T-1 outputs whose consumers
        # are not trained yet: the sweep must invalidate the downstream
        # tokens and re-mint the lost dependencies.
        result = run_faulted(vgg19_partition, "crash:0@1.0")
        assert len(result.records) == ITERATIONS
        summary = result.stats["faults"]
        assert summary["tokens_reminted"] >= 1
        assert summary["tokens_invalidated"] >= 1
        assert summary["lost_compute_seconds"] > 0.0

    def test_crash_mid_fetch_revokes_assigned_consumer(
        self, vgg19_partition
    ):
        # A slow fabric keeps dependency fetches in flight for seconds:
        # the holder dies while its consumer's assignee is still mid-
        # fetch, so no live copy exists and the consumer is revoked from
        # the assignee rather than promoted.
        slow = ClusterSpec(num_nodes=8, link_bandwidth=2e8)
        result = run_faulted(
            vgg19_partition,
            "crash:1@1.0",
            cluster_spec=slow,
            lease_timeout=0.1,
        )
        assert len(result.records) == ITERATIONS
        summary = result.stats["faults"]
        assert summary["tokens_revoked"] >= 1
        assert summary["tokens_reminted"] >= 1

    def test_multiple_crashes_survived(self, vgg19_partition):
        result = run_faulted(
            vgg19_partition, "crash:1@0.3,crash:6@2.9", iterations=4
        )
        assert len(result.records) == 4
        summary = result.stats["faults"]
        assert len(summary["failures"]) == 2
        states = summary["final_states"]
        assert states[1] == "failed" and states[6] == "failed"

    def test_probabilistic_crashes_deterministic(self, vgg19_partition):
        results = [
            run_faulted(vgg19_partition, "crashp:0.08:3", iterations=4)
            for _ in range(2)
        ]
        assert repr(results[0].total_time) == repr(results[1].total_time)
        summaries = [json.dumps(r.stats["faults"]) for r in results]
        assert summaries[0] == summaries[1]

    def test_crash_of_last_active_worker_skipped(self, vgg19_partition):
        # Killing every worker would deadlock the run; the controller
        # must refuse the final crash and count it as skipped.
        spec = ",".join(f"crash:{wid}@1.{wid}" for wid in range(8))
        result = run_faulted(vgg19_partition, spec, iterations=1)
        assert len(result.records) == 1
        summary = result.stats["faults"]
        assert summary["skipped_crashes"] >= 1
        assert len(summary["failures"]) <= 7


class TestPipelinedCrashRecovery:
    def test_bsp_pipelined_equivalence_not_required(self, vgg19_partition):
        result = run_faulted(
            vgg19_partition,
            "crash:3@2.0",
            cls=PipelinedFelaRuntime,
            iterations=4,
            sync_mode="ssp",
            staleness=2,
        )
        assert len(result.records) == 4
        assert result.stats["faults"]["tokens_reclaimed"] >= 1

    def test_asp_crash_completes(self, vgg19_partition):
        result = run_faulted(
            vgg19_partition,
            "crash:2@1.2",
            cls=PipelinedFelaRuntime,
            iterations=4,
            sync_mode="asp",
        )
        assert len(result.records) == 4


class TestFaultTraceEvents:
    def test_crash_run_emits_causal_fault_events(self, vgg19_partition):
        tracer = Tracer()
        run_faulted(vgg19_partition, "crash:0@1.0", tracer=tracer)
        names = [event.name for event in tracer.events]
        assert EV_WORKER_FAILED in names
        assert EV_TOKEN_REMINTED in names
        failed = next(
            e for e in tracer.events if e.name == EV_WORKER_FAILED
        )
        assert failed.args["worker"] == 0
        assert failed.args["crash_time"] == 1.0
        assert failed.args["detect_time"] >= 1.0
        # Re-mint events carry the token id for causal linking.
        reminted = [
            e for e in tracer.events if e.name == EV_TOKEN_REMINTED
        ]
        assert all("token" in e.args for e in reminted)

    def test_faulted_trace_passes_schema_validation(self, vgg19_partition):
        tracer = Tracer()
        run_faulted(vgg19_partition, "crash:3@2.0", tracer=tracer)
        assert EV_TOKEN_RECLAIMED in [e.name for e in tracer.events]
        validate_chrome_trace(chrome_trace(tracer.events))
