"""Elastic membership integration tests: leave, join, and overhead."""

from repro.analysis.invariants import InvariantChecker
from repro.core import FelaConfig, FelaRuntime, PipelinedFelaRuntime
from repro.faults import FaultController, NoFaults, parse_faults
from repro.hardware import Cluster, ClusterSpec
from repro.obs import EV_WORKER_JOINED, EV_WORKER_LEFT, Tracer

from tests.faults.test_recovery import run_faulted


class TestGracefulLeave:
    def test_leave_drains_and_run_completes(self, vgg19_partition):
        tracer = Tracer()
        result = run_faulted(
            vgg19_partition, "leave:2@1.0", iterations=4, tracer=tracer
        )
        assert len(result.records) == 4
        summary = result.stats["faults"]
        assert summary["left"] == [2]
        assert summary["final_states"][2] == "left"
        # No recovery needed: the departed node stays online, so its
        # activations never have to be re-minted.
        assert summary["tokens_reminted"] == 0
        assert summary["tokens_reclaimed"] == 0
        assert EV_WORKER_LEFT in [e.name for e in tracer.events]

    def test_departed_worker_stops_training(self, vgg19_partition):
        result = run_faulted(
            vgg19_partition, "leave:2@1.0", iterations=4
        )
        # Once drained, the departed worker does no work in the
        # remaining iterations.
        assert result.records[-1].work_by_worker[2] == 0
        # The survivors absorb its share instead.
        assert sum(result.records[-1].work_by_worker) == sum(
            result.records[0].work_by_worker
        )

    def test_last_active_worker_cannot_leave(self, vgg19_partition):
        spec = ",".join(f"leave:{wid}@0.5" for wid in range(8))
        result = run_faulted(vgg19_partition, spec, iterations=2)
        assert len(result.records) == 2
        summary = result.stats["faults"]
        assert summary["skipped_leaves"] >= 1
        assert len(summary["left"]) <= 7


class TestJoin:
    def test_join_mid_run_trains_tokens(self, vgg19_partition):
        tracer = Tracer()
        result = run_faulted(
            vgg19_partition,
            "join@1.5",
            nodes=9,
            iterations=4,
            tracer=tracer,
        )
        assert len(result.records) == 4
        summary = result.stats["faults"]
        assert summary["joined"] == [8]
        assert summary["final_states"][8] == "active"
        joined = next(
            e for e in tracer.events if e.name == EV_WORKER_JOINED
        )
        assert joined.args["worker"] == 8
        # The newcomer pulls work from its first full iteration on.
        assert result.records[-1].work_by_worker[8] > 0
        # And it starts only at an iteration boundary, not mid-iteration.
        assert joined.args["iteration"] >= 1

    def test_join_speeds_up_the_run(self, vgg19_partition):
        # crashp:0.0 arms the fault layer without any event firing.
        without = run_faulted(
            vgg19_partition, "crashp:0.0", nodes=10, iterations=4
        )
        with_join = run_faulted(
            vgg19_partition, "join@0.5,join@0.5", nodes=10, iterations=4
        )
        assert with_join.total_time < without.total_time

    def test_join_and_crash_combined(self, vgg19_partition):
        result = run_faulted(
            vgg19_partition,
            "join@0.5,crash:4@2.2,leave:1@4.0",
            nodes=9,
            iterations=4,
        )
        assert len(result.records) == 4
        summary = result.stats["faults"]
        assert summary["joined"] == [8]
        assert summary["final_states"][4] == "failed"
        assert summary["final_states"][1] == "left"

    def test_pipelined_join(self, vgg19_partition):
        result = run_faulted(
            vgg19_partition,
            "crash:2@1.2,join@2.0",
            cls=PipelinedFelaRuntime,
            nodes=9,
            iterations=4,
            sync_mode="asp",
        )
        assert len(result.records) == 4
        assert result.stats["faults"]["joined"] == [8]


class TestZeroOverhead:
    def _run(self, partition, cls, faults, **kwargs):
        config = FelaConfig(
            partition=partition,
            total_batch=128,
            num_workers=8,
            weights=(1, 2, 8),
            conditional_subset_size=2,
            iterations=3,
            **kwargs,
        )
        cluster = Cluster(ClusterSpec(num_nodes=8))
        runtime = cls(config, cluster, faults=faults)
        return runtime.run().total_time

    def test_nofaults_layer_is_timing_neutral(self, vgg19_partition):
        """The armed fault layer (lease monitor, elastic worker loop)
        must not shift the simulation by a single float ULP when no
        fault fires."""
        plain = self._run(vgg19_partition, FelaRuntime, None)
        elastic = self._run(
            vgg19_partition, FelaRuntime, FaultController(NoFaults())
        )
        assert repr(plain) == repr(elastic)

    def test_nofaults_layer_neutral_when_pipelined(self, vgg19_partition):
        plain = self._run(
            vgg19_partition,
            PipelinedFelaRuntime,
            None,
            sync_mode="ssp",
            staleness=2,
        )
        elastic = self._run(
            vgg19_partition,
            PipelinedFelaRuntime,
            FaultController(NoFaults()),
            sync_mode="ssp",
            staleness=2,
        )
        assert repr(plain) == repr(elastic)


class TestInvariantCheckerCoversElasticity:
    def test_joined_worker_accepted_in_sync_participants(
        self, vgg19_partition
    ):
        # A join grows the participant universe past config.num_workers;
        # the checker must widen with it (and stay silent).
        checker = InvariantChecker()
        config = FelaConfig(
            partition=vgg19_partition,
            total_batch=128,
            num_workers=8,
            weights=(1, 2, 8),
            conditional_subset_size=2,
            iterations=3,
        )
        cluster = Cluster(ClusterSpec(num_nodes=9))
        runtime = FelaRuntime(
            config,
            cluster,
            invariants=checker,
            faults=FaultController(parse_faults("join@0.5")),
        )
        result = runtime.run()
        assert result.records[-1].work_by_worker[8] > 0
        assert checker.checks > 0
