"""Unit tests for the elastic membership state machine."""

import pytest

from repro.errors import SchedulingError
from repro.faults import (
    ACTIVE,
    DRAINING,
    FAILED,
    JOINING,
    LEFT,
    Membership,
)


class TestInitialState:
    def test_initial_workers_active(self):
        membership = Membership(3)
        assert membership.known_workers() == [0, 1, 2]
        assert membership.active_workers() == [0, 1, 2]
        for wid in range(3):
            assert membership.state(wid) == ACTIVE
            assert membership.is_active(wid)
            assert membership.is_online(wid)

    def test_needs_at_least_one_worker(self):
        with pytest.raises(SchedulingError):
            Membership(0)


class TestTransitions:
    def test_failure(self):
        membership = Membership(2)
        membership.mark_failed(1)
        assert membership.state(1) == FAILED
        assert membership.is_failed(1)
        assert not membership.is_online(1)
        assert membership.active_workers() == [0]

    def test_graceful_leave(self):
        membership = Membership(2)
        membership.mark_draining(0)
        assert membership.state(0) == DRAINING
        assert membership.is_draining(0)
        assert membership.active_workers() == [1]
        assert membership.is_online(0)  # still finishing in-flight work
        membership.mark_left(0)
        assert membership.state(0) == LEFT
        assert membership.is_online(0)  # activations stay fetchable

    def test_draining_worker_may_fail(self):
        membership = Membership(2)
        membership.mark_draining(0)
        membership.mark_failed(0)
        assert membership.state(0) == FAILED

    def test_join_lifecycle(self):
        membership = Membership(2)
        membership.add_joining(2)
        assert membership.state(2) == JOINING
        assert not membership.is_active(2)
        membership.activate(2)
        assert membership.active_workers() == [0, 1, 2]

    def test_illegal_transitions_rejected(self):
        membership = Membership(2)
        membership.mark_failed(0)
        with pytest.raises(SchedulingError):
            membership.mark_failed(0)  # already failed
        with pytest.raises(SchedulingError):
            membership.mark_draining(0)  # dead workers cannot drain
        with pytest.raises(SchedulingError):
            membership.mark_left(1)  # must drain before leaving

    def test_unknown_worker_rejected(self):
        membership = Membership(2)
        with pytest.raises(SchedulingError):
            membership.state(7)

    def test_duplicate_join_rejected(self):
        membership = Membership(2)
        membership.add_joining(2)
        with pytest.raises(SchedulingError):
            membership.add_joining(2)


class TestEpochAndQueries:
    def test_epoch_bumps_on_every_transition(self):
        membership = Membership(3)
        epoch = membership.epoch
        membership.mark_draining(2)
        assert membership.epoch == epoch + 1
        membership.mark_left(2)
        assert membership.epoch == epoch + 2

    def test_may_request_only_when_active(self):
        membership = Membership(2)
        membership.add_joining(2)
        assert membership.may_request(0)
        assert not membership.may_request(2)
        # Draining workers receive no new tokens — that is what lets
        # their drain complete.
        membership.mark_draining(1)
        assert not membership.may_request(1)

    def test_rehome_target_wraps_over_active(self):
        membership = Membership(4)
        membership.mark_failed(2)
        # Active workers are [0, 1, 3]; dead homes re-map into them.
        assert membership.rehome_target(2) == membership.active_workers()[
            2 % 3
        ]
        assert membership.rehome_target(2) in membership.active_workers()
