"""Pinned no-fault baselines: the fault subsystem must be invisible.

These five ``total_time`` values were recorded on the commit *before*
the fault layer existed.  Any drift — even one float ULP — means the
fault machinery perturbed an unfaulted run: a forbidden change to the
simulator's deterministic schedule.  (``repr`` round-trips doubles
exactly, so string comparison is bit-exact.)
"""

import pytest

from repro.core import FelaConfig, FelaRuntime, PipelinedFelaRuntime
from repro.hardware import Cluster, ClusterSpec
from repro.stragglers import ProbabilityStraggler, RoundRobinStraggler

PINNED = {
    "bsp": "10.369026752546905",
    "bsp_rr": "12.810091393774538",
    "bsp_prob": "13.522563446941081",
    "ssp_pipe": "12.032065240319994",
    "asp_pipe": "10.31240059909236",
}


def _config(partition, **kwargs):
    return FelaConfig(
        partition=partition,
        total_batch=128,
        num_workers=8,
        weights=(1, 2, 8),
        conditional_subset_size=2,
        iterations=4,
        **kwargs,
    )


def _total_time(partition, cls, straggler=None, **kwargs):
    cluster = Cluster(ClusterSpec(num_nodes=8))
    runtime = cls(_config(partition, **kwargs), cluster,
                  straggler=straggler)
    return runtime.run().total_time


#: name -> (runtime class, straggler factory, config overrides).
#: Stragglers carry per-run state, so each case builds a fresh one.
CASES = {
    "bsp": (FelaRuntime, lambda: None, {}),
    "bsp_rr": (FelaRuntime, lambda: RoundRobinStraggler(2.0), {}),
    "bsp_prob": (
        FelaRuntime,
        lambda: ProbabilityStraggler(0.3, 1.5, seed=7),
        {},
    ),
    "ssp_pipe": (
        PipelinedFelaRuntime,
        lambda: RoundRobinStraggler(1.0),
        {"sync_mode": "ssp", "staleness": 2},
    ),
    "asp_pipe": (PipelinedFelaRuntime, lambda: None, {"sync_mode": "asp"}),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_total_time_matches_pre_fault_layer_pin(name, vgg19_partition):
    cls, make_straggler, kwargs = CASES[name]
    total = _total_time(vgg19_partition, cls, make_straggler(), **kwargs)
    assert repr(total) == PINNED[name]
