"""The fault subsystem must satisfy the determinism lint rules.

``tests/analysis/test_self_lint.py`` already sweeps the whole tree;
this test pins the fault package *explicitly* so that narrowing the
tree-wide sweep can never silently drop coverage of the one subsystem
whose whole contract is deterministic injection and recovery.
"""

import pathlib

from repro.analysis import lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_faults_package_is_lint_clean():
    target = REPO_ROOT / "src" / "repro" / "faults"
    assert target.exists(), f"missing tree: {target}"
    violations = lint_paths([target])
    assert violations == [], "\n".join(v.render() for v in violations)


def test_faults_tests_are_lint_clean():
    target = REPO_ROOT / "tests" / "faults"
    violations = lint_paths([target])
    assert violations == [], "\n".join(v.render() for v in violations)
