"""Unit tests for fault injectors and the ``--faults`` grammar."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    KIND_CRASH,
    KIND_JOIN,
    KIND_LEAVE,
    CompositeFaultInjector,
    FaultEvent,
    FaultScript,
    NoFaults,
    ProbabilisticCrashes,
    parse_faults,
)


class TestFaultEvent:
    def test_join_must_not_name_a_worker(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(1.0, KIND_JOIN, wid=3)

    def test_crash_needs_a_worker(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(1.0, KIND_CRASH)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(-0.5, KIND_LEAVE, wid=0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(1.0, "explode", wid=0)


class TestScriptedInjectors:
    def test_script_sorts_by_time(self):
        script = FaultScript(
            [
                FaultEvent(3.0, KIND_CRASH, 1),
                FaultEvent(1.0, KIND_JOIN),
            ]
        )
        times = [ev.time for ev in script.scripted_events()]
        assert times == sorted(times)

    def test_planned_joins_counts_join_events(self):
        script = FaultScript(
            [
                FaultEvent(1.0, KIND_JOIN),
                FaultEvent(2.0, KIND_JOIN),
                FaultEvent(3.0, KIND_CRASH, 0),
            ]
        )
        assert script.planned_joins == 2
        assert NoFaults().planned_joins == 0

    def test_composite_merges_and_sorts(self):
        composite = CompositeFaultInjector(
            [
                FaultScript([FaultEvent(5.0, KIND_CRASH, 2)]),
                FaultScript([FaultEvent(1.0, KIND_JOIN)]),
            ]
        )
        events = composite.scripted_events()
        assert [ev.time for ev in events] == [1.0, 5.0]
        assert composite.planned_joins == 1


class TestProbabilisticCrashes:
    def test_same_seed_same_events(self):
        a = ProbabilisticCrashes(0.3, seed=11)
        b = ProbabilisticCrashes(0.3, seed=11)
        active = [0, 1, 2, 3]
        assert a.iteration_crashes(2, 10.0, active) == b.iteration_crashes(
            2, 10.0, active
        )

    def test_membership_changes_do_not_shift_other_workers(self):
        # Every worker gets its own (roll, offset) draw in sorted-wid
        # order, so removing one worker leaves the others' events alone
        # except for workers after it in the order.  The stream is keyed
        # on (seed, iteration) only.
        a = ProbabilisticCrashes(1.0, seed=5)
        b = ProbabilisticCrashes(1.0, seed=5)
        full = a.iteration_crashes(0, 0.0, [0, 1, 2])
        assert [ev.wid for ev in full] == [0, 1, 2]
        again = b.iteration_crashes(0, 0.0, [0, 1, 2])
        assert full == again

    def test_max_crashes_caps_emission(self):
        injector = ProbabilisticCrashes(1.0, seed=3, max_crashes=2)
        events = injector.iteration_crashes(0, 0.0, [0, 1, 2, 3])
        assert len(events) == 2

    def test_probability_validated(self):
        with pytest.raises(ConfigurationError):
            ProbabilisticCrashes(1.5)
        with pytest.raises(ConfigurationError):
            ProbabilisticCrashes(0.5, window=0.0)


class TestParseFaults:
    def test_none_forms(self):
        assert parse_faults("none") is None
        assert parse_faults("") is None
        assert parse_faults("off") is None

    def test_scripted_clauses(self):
        injector = parse_faults("crash:2@3.5,leave:1@4,join@6")
        events = injector.scripted_events()
        assert [(ev.kind, ev.wid, ev.time) for ev in events] == [
            (KIND_CRASH, 2, 3.5),
            (KIND_LEAVE, 1, 4.0),
            (KIND_JOIN, None, 6.0),
        ]

    def test_probabilistic_clause(self):
        injector = parse_faults("crashp:0.05:7")
        assert isinstance(injector, ProbabilisticCrashes)
        assert injector.seed == 7

    def test_composite_spec(self):
        injector = parse_faults("crash:0@1,crashp:0.1")
        assert isinstance(injector, CompositeFaultInjector)
        assert injector.planned_joins == 0

    @pytest.mark.parametrize(
        "bad",
        ["crash:0", "crash:@1", "leave:x@2", "join@", "crashp:2.0", "huh"],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_faults(bad)
