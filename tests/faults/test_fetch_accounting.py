"""Regression tests for fetch accounting in ``Worker._fetch_inputs``.

The original code credited ``bytes_fetched`` and the Parameter Chunks
*before* yielding on the transfers.  That was invisible in fault-free
runs (the credits and the wait commute) but wrong under failure: a
worker killed mid-fetch kept phantom bytes and a chunk it never
received, and the recovery sweep would then "promote" that phantom copy
instead of revoking the consumer.
"""

from repro.core import FelaConfig, FelaRuntime
from repro.core.tokens import SampleRange, Token
from repro.faults import FaultController, NoFaults, parse_faults
from repro.faults.signals import WorkerCrash
from repro.hardware import Cluster, ClusterSpec
from repro.sim import Interrupt

from tests.faults.test_recovery import run_faulted


def _elastic_runtime(partition, num_workers=2):
    config = FelaConfig(
        partition=partition,
        total_batch=64,
        num_workers=num_workers,
        weights=(1, 2, 2),
        iterations=1,
    )
    cluster = Cluster(ClusterSpec(num_nodes=num_workers))
    return FelaRuntime(
        config, cluster, faults=FaultController(NoFaults())
    )


class TestInterruptedFetch:
    def test_crash_mid_fetch_leaves_no_phantom_bytes(self, vgg19_partition):
        """Interrupt a worker while its input transfer is in flight:
        neither the byte counter nor the chunk set may move."""
        runtime = _elastic_runtime(vgg19_partition)
        env = runtime.cluster.env
        worker = runtime.workers[1]
        # A T-1 token homed at worker 0: fetching its samples from
        # worker 1 forces a real fabric transfer.
        token = Token(
            tid=0,
            level=0,
            iteration=0,
            ordinal=0,
            samples=SampleRange(0, 32),
            deps=(),
            home_worker=0,
        )
        outcome = []

        def driver():
            try:
                yield from worker._fetch_inputs(token)
            except Interrupt as interrupt:
                outcome.append(interrupt.cause)
                return
            outcome.append("completed")

        proc = env.process(driver())

        def killer():
            yield env.timeout(1e-4)  # transfer takes much longer
            proc.interrupt(WorkerCrash(1))

        env.process(killer())
        # Bounded run: the attached fault layer's lease monitor ticks
        # forever, so run-to-exhaustion would never return.
        env.run(until=proc)
        assert isinstance(outcome[0], WorkerCrash)
        assert worker.bytes_fetched == 0.0
        assert worker.chunks == set()

    def test_uninterrupted_fetch_still_credits(self, vgg19_partition):
        runtime = _elastic_runtime(vgg19_partition)
        env = runtime.cluster.env
        worker = runtime.workers[1]
        token = Token(
            tid=0,
            level=0,
            iteration=0,
            ordinal=0,
            samples=SampleRange(0, 32),
            deps=(),
            home_worker=0,
        )
        env.run(env.process(worker._fetch_inputs(token)))
        expected = 32 * runtime.config.partition.model.input_bytes
        assert worker.bytes_fetched == expected


class TestSweepSeesTrueChunkState:
    def test_mid_fetch_consumer_revoked_not_promoted(self, vgg19_partition):
        """With correct accounting the sweep sees the in-flight fetch's
        chunk as absent and revokes the consumer; the phantom-copy bug
        would promote instead, leaving ``tokens_revoked == 0``."""
        slow = ClusterSpec(num_nodes=8, link_bandwidth=2e8)
        result = run_faulted(
            vgg19_partition,
            "crash:1@1.0",
            cluster_spec=slow,
            lease_timeout=0.1,
        )
        summary = result.stats["faults"]
        assert summary["tokens_revoked"] >= 1
        assert summary["copies_promoted"] == 0
