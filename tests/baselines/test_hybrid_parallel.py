"""Unit/integration tests for the hybrid-parallel (Stanza) baseline."""

import pytest

from repro.baselines import DataParallel, HybridParallel
from repro.errors import ConfigurationError
from repro.models import get_model


class TestLayerSeparation:
    def test_split_at_first_fc(self, vgg19):
        hp = HybridParallel(vgg19, 128, 8, iterations=1)
        assert all(p.name.startswith(("conv", "pool")) for p in hp.conv_layers)
        assert [p.name for p in hp.fc_layers] == ["fc1", "fc2", "fc3"]

    def test_worker_roles(self, vgg19):
        hp = HybridParallel(vgg19, 128, 8, iterations=1)
        assert hp.conv_workers == [0, 1, 2, 3, 4, 5, 6]
        assert hp.fc_worker == 7

    def test_boundary_is_conv_output(self, vgg19):
        hp = HybridParallel(vgg19, 128, 8, iterations=1)
        # VGG19's final conv feature map: 512 x 7 x 7 floats.
        assert hp.boundary_bytes_per_sample == 512 * 7 * 7 * 4

    def test_needs_two_workers(self, vgg19):
        with pytest.raises(ConfigurationError):
            HybridParallel(vgg19, 128, 1, iterations=1)

    def test_model_without_fc_boundary_rejected(self):
        from repro.models import ConvSpec, ModelGraph

        conv_only = ModelGraph(
            "convnet", (3, 32, 32), [ConvSpec(name="c", out_channels=8)]
        )
        with pytest.raises(ConfigurationError):
            HybridParallel(conv_only, 128, 8, iterations=1)


class TestExecution:
    def test_run_produces_result(self, vgg19):
        result = HybridParallel(vgg19, 128, 8, iterations=2).run()
        assert result.runtime_name == "hp"
        assert result.average_throughput > 0

    def test_fc_parameters_never_cross_network(self, vgg19):
        """Stanza's saving: HP sync traffic is far below DP's because the
        FC layers (86% of VGG19 parameters) stay on one worker."""
        hp = HybridParallel(vgg19, 128, 8, iterations=2).run()
        dp = DataParallel(vgg19, 128, 8, iterations=2).run()
        assert hp.stats["network_bytes"] < 0.5 * dp.stats["network_bytes"]

    def test_network_traffic_grows_with_batch(self, vgg19):
        """HP's activation shipping is proportional to the batch size —
        the reason it falls behind DP at large batches.  (The CONV
        all-reduce component is batch-independent, so only the delta
        scales.)"""
        hp = HybridParallel(vgg19, 128, 8, iterations=2)
        small = hp.run()
        large = HybridParallel(vgg19, 1024, 8, iterations=2).run()
        delta = large.stats["network_bytes"] - small.stats["network_bytes"]
        per_iter_activations = (1024 - 128) * hp.boundary_bytes_per_sample * 2
        assert delta == pytest.approx(2 * per_iter_activations, rel=0.05)

    def test_beats_dp_at_small_batch_loses_at_large(self, vgg19):
        """The crossover Fig. 8 shows."""
        hp_small = HybridParallel(vgg19, 128, 8, iterations=2).run()
        dp_small = DataParallel(vgg19, 128, 8, iterations=2).run()
        assert hp_small.average_throughput > dp_small.average_throughput

        hp_large = HybridParallel(vgg19, 2048, 8, iterations=2).run()
        dp_large = DataParallel(vgg19, 2048, 8, iterations=2).run()
        assert hp_large.average_throughput < 1.1 * dp_large.average_throughput

    def test_work_record_includes_fc_worker(self, vgg19):
        result = HybridParallel(vgg19, 140, 8, iterations=1).run()
        work = result.records[0].work_by_worker
        assert len(work) == 8
        assert sum(work[:-1]) == 140  # conv shards
        assert work[-1] == 140  # FC worker sees the whole batch

    def test_googlenet_runs(self, googlenet):
        result = HybridParallel(googlenet, 256, 8, iterations=2).run()
        assert result.average_throughput > 0
