"""Unit/integration tests for the data-parallel baseline."""

import pytest

from repro.baselines import DataParallel
from repro.errors import CapacityError, ConfigurationError
from repro.hardware import Cluster, ClusterSpec, GpuSpec
from repro.stragglers import RoundRobinStraggler


class TestAccumulation:
    def test_single_chunk_when_fits(self, vgg19):
        dp = DataParallel(vgg19, 128, 8, iterations=1)
        assert dp.accumulation_chunks(16) == [16]

    def test_accumulates_when_memory_binds(self, vgg19):
        """VGG19 per-worker batch 128 >> the ~32-sample memory cap."""
        dp = DataParallel(vgg19, 1024, 8, iterations=1)
        chunks = dp.accumulation_chunks(128)
        assert len(chunks) > 1
        assert sum(chunks) == 128
        gpu = dp.cluster.spec.gpu
        for chunk in chunks:
            assert gpu.fits(vgg19.layers, chunk, vgg19.input_floats)

    def test_chunks_are_pow2_except_remainder(self, vgg19):
        dp = DataParallel(vgg19, 800, 8, iterations=1)
        chunks = dp.accumulation_chunks(100)
        main = chunks[:-1] if chunks[-1] != chunks[0] else chunks
        for chunk in main:
            assert (chunk & (chunk - 1)) == 0

    def test_model_too_big_for_gpu_rejected(self, vgg19):
        tiny_gpu = ClusterSpec(num_nodes=8, gpu=GpuSpec(memory_bytes=1e9))
        with pytest.raises(CapacityError):
            DataParallel(
                vgg19, 128, 8, iterations=1, cluster=Cluster(tiny_gpu)
            )


class TestExecution:
    def test_run_produces_records(self, vgg19):
        result = DataParallel(vgg19, 128, 8, iterations=3).run()
        assert result.iterations == 3
        assert result.runtime_name == "dp"
        assert result.average_throughput > 0

    def test_comm_cost_flat_in_batch(self, vgg19):
        """DP moves the whole model regardless of batch size."""
        small = DataParallel(vgg19, 128, 8, iterations=2).run()
        large = DataParallel(vgg19, 1024, 8, iterations=2).run()
        assert small.stats["network_bytes"] == pytest.approx(
            large.stats["network_bytes"], rel=1e-6
        )

    def test_straggler_delay_lands_in_full(self, vgg19):
        """BSP: every iteration waits for the slowest worker."""
        d = 4.0
        base = DataParallel(vgg19, 128, 8, iterations=4).run()
        slow = DataParallel(
            vgg19, 128, 8, iterations=4,
            straggler=RoundRobinStraggler(d),
        ).run()
        pid = (slow.total_time - base.total_time) / 4
        assert pid == pytest.approx(d, rel=0.05)

    def test_workers_split_batch_evenly(self, vgg19):
        result = DataParallel(vgg19, 100, 8, iterations=1).run()
        shares = result.records[0].work_by_worker
        assert sum(shares) == 100
        assert max(shares) - min(shares) <= 1

    def test_validation(self, vgg19):
        with pytest.raises(ConfigurationError):
            DataParallel(vgg19, 4, 8, iterations=1)
        with pytest.raises(ConfigurationError):
            DataParallel(vgg19, 128, 0, iterations=1)
        with pytest.raises(ConfigurationError):
            DataParallel(vgg19, 128, 8, iterations=0)
