"""Tests for the proactive re-partitioning scheduler (Section III-C)."""

import pytest

from repro.baselines import DataParallel, ProactiveElastic
from repro.errors import ConfigurationError
from repro.metrics import per_iteration_delay
from repro.stragglers import RoundRobinStraggler, TransientStraggler


class TestQuotas:
    def test_equal_beliefs_equal_quotas(self, vgg19):
        runtime = ProactiveElastic(vgg19, 256, 8, iterations=1)
        quotas = runtime.quotas()
        assert quotas == [32] * 8

    def test_quotas_sum_to_batch(self, vgg19):
        runtime = ProactiveElastic(vgg19, 100, 8, iterations=1)
        runtime._believed_speed = [1, 2, 3, 4, 5, 6, 7, 8]
        assert sum(runtime.quotas()) == 100

    def test_faster_belief_gets_more_work(self, vgg19):
        runtime = ProactiveElastic(vgg19, 256, 8, iterations=1)
        runtime._believed_speed = [2.0] + [1.0] * 7
        quotas = runtime.quotas()
        assert quotas[0] > quotas[1]

    def test_invalid_profile_period(self, vgg19):
        with pytest.raises(ConfigurationError):
            ProactiveElastic(vgg19, 256, 8, profile_period=0)


class TestBehaviour:
    def test_matches_dp_without_stragglers(self, vgg19):
        """With homogeneous workers the quotas stay even: same cost
        structure as plain data parallelism."""
        proactive = ProactiveElastic(vgg19, 256, 8, iterations=3).run()
        dp = DataParallel(vgg19, 256, 8, iterations=3).run()
        assert proactive.average_throughput == pytest.approx(
            dp.average_throughput, rel=0.05
        )

    def test_adapts_to_a_persistent_straggler(self, vgg19):
        """When one worker is *always* slow, proactive re-balancing moves
        work off it — the case the design is built for."""

        class AlwaysSlow(TransientStraggler):
            def delays(self, iteration, num_workers):
                delays = [0.0] * num_workers
                delays[0] = self.delay
                return delays

        injector = AlwaysSlow(6.0)
        proactive = ProactiveElastic(
            vgg19, 256, 8, iterations=20, straggler=injector,
            profile_period=5,
        ).run()
        dp = DataParallel(
            vgg19, 256, 8, iterations=20, straggler=injector
        ).run()
        assert proactive.average_throughput > dp.average_throughput
        # After re-balancing, worker 0 trains far less than the others.
        late_quotas = proactive.records[-1].work_by_worker
        assert late_quotas[0] < min(late_quotas[1:])

    def test_transient_stragglers_defeat_proactive_scheduling(self, vgg19):
        """The paper's Section III-C claim, measured: with rapidly
        switching stragglers, periodic re-distribution adds load to the
        newly slow and starves the recovered — its PID is no better
        (typically worse) than doing nothing at all."""
        injector = TransientStraggler(6.0, hits=2, persistence=1, seed=0)
        iterations = 12

        def pid(cls):
            base = cls(vgg19, 256, 8, iterations=iterations).run()
            slow = cls(
                vgg19, 256, 8, iterations=iterations, straggler=injector
            ).run()
            return per_iteration_delay(slow, base)

        assert pid(ProactiveElastic) >= 0.95 * pid(DataParallel)

    def test_round_robin_is_the_worst_case(self, vgg19):
        """A new straggler every iteration: every re-partition is wrong."""
        injector = RoundRobinStraggler(6.0)
        base = ProactiveElastic(vgg19, 256, 8, iterations=16).run()
        slow = ProactiveElastic(
            vgg19, 256, 8, iterations=16, straggler=injector
        ).run()
        assert per_iteration_delay(slow, base) >= 6.0 * 0.95
