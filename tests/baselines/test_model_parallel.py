"""Unit/integration tests for the model-parallel pipeline baseline."""

import pytest

from repro.baselines import ModelParallel, balance_stages, default_micro_batch
from repro.errors import ConfigurationError
from repro.stragglers import RoundRobinStraggler


class TestStageBalancing:
    def test_stages_cover_model_contiguously(self, vgg19):
        stages = balance_stages(vgg19, 8)
        assert len(stages) == 8
        indices = [p.index for stage in stages for p in stage]
        assert indices == list(range(len(vgg19)))

    def test_stage_costs_roughly_balanced_by_time(self, vgg19):
        from repro.hardware import GpuSpec

        gpu = GpuSpec()
        cost = lambda p: gpu.layer_train_time(p, 4)  # noqa: E731
        stages = balance_stages(vgg19, 8, cost=cost)
        costs = [sum(cost(p) for p in stage) for stage in stages]
        # Greedy contiguous split: imbalance exists ("model partition can
        # hardly be balanced") but stays within an order of magnitude.
        assert max(costs) / min(costs) < 10

    def test_every_stage_nonempty(self, googlenet):
        for n in (2, 4, 8):
            stages = balance_stages(googlenet, n)
            assert all(stage for stage in stages)

    def test_too_many_stages_rejected(self, googlenet):
        with pytest.raises(ConfigurationError):
            balance_stages(googlenet, 1000)


class TestMicroBatching:
    def test_default_follows_gpipe_chunking(self):
        assert default_micro_batch(1024, 8) == 32
        assert default_micro_batch(64, 8) == 4  # floored at the minimum

    def test_micro_batch_listing(self, vgg19):
        mp = ModelParallel(vgg19, 100, 8, iterations=1, micro_batch=16)
        sizes = mp.micro_batches()
        assert sum(sizes) == 100
        assert sizes[:-1] == [16] * 6
        assert sizes[-1] == 4

    def test_invalid_micro_batch(self, vgg19):
        with pytest.raises(ConfigurationError):
            ModelParallel(vgg19, 128, 8, iterations=1, micro_batch=0)


class TestExecution:
    def test_run_produces_result(self, vgg19):
        result = ModelParallel(vgg19, 128, 8, iterations=2).run()
        assert result.runtime_name == "mp"
        assert result.average_throughput > 0

    def test_no_parameter_synchronization(self, vgg19):
        """MP workers own disjoint layers: network traffic is only
        boundary activations, far below DP's full-model sync."""
        from repro.baselines import DataParallel

        mp = ModelParallel(vgg19, 128, 8, iterations=2).run()
        dp = DataParallel(vgg19, 128, 8, iterations=2).run()
        assert mp.stats["network_bytes"] < dp.stats["network_bytes"]

    def test_bubble_makes_mp_slow(self, vgg19):
        """The paper's central MP criticism: most workers idle."""
        mp = ModelParallel(vgg19, 256, 8, iterations=2).run()
        busy = mp.stats["compute_seconds_by_worker"]
        # Aggregate GPU utilization is far below what 8 busy workers
        # would produce.
        assert sum(busy) < 0.75 * 8 * mp.total_time

    def test_straggler_on_idle_stage_partially_absorbed(self, vgg19):
        """Paper V-C2: MP's idle time overlaps the injected sleep, so the
        per-iteration delay is below the injected d."""
        d = 6.0
        base = ModelParallel(vgg19, 128, 8, iterations=3).run()
        slow = ModelParallel(
            vgg19, 128, 8, iterations=3, straggler=RoundRobinStraggler(d)
        ).run()
        pid = (slow.total_time - base.total_time) / 3
        assert pid < d

    def test_deterministic(self, vgg19):
        a = ModelParallel(vgg19, 128, 8, iterations=2).run()
        b = ModelParallel(vgg19, 128, 8, iterations=2).run()
        assert a.total_time == b.total_time
