"""Unit tests for the max-min fair network fabric."""

import pytest

from repro.errors import SimulationError
from repro.net import Fabric
from repro.sim import Environment


def run_transfers(fabric, env, transfers):
    """Start (name, src, dst, size, start) transfers; return completions."""
    done = {}

    def xfer(name, src, dst, size, start):
        if start:
            yield env.timeout(start)
        duration = yield fabric.transfer(src, dst, size)
        done[name] = (env.now, duration)

    for spec in transfers:
        env.process(xfer(*spec))
    env.run()
    return done


class TestBasics:
    def test_single_flow_line_rate(self):
        env = Environment()
        fabric = Fabric(env, num_nodes=2, link_bandwidth=100.0, latency=0.0)
        done = run_transfers(fabric, env, [("a", 0, 1, 1000, 0)])
        assert done["a"][0] == pytest.approx(10.0)

    def test_latency_added_after_last_byte(self):
        env = Environment()
        fabric = Fabric(env, num_nodes=2, link_bandwidth=100.0, latency=0.5)
        done = run_transfers(fabric, env, [("a", 0, 1, 100, 0)])
        assert done["a"][0] == pytest.approx(1.5)

    def test_local_transfer_is_free(self):
        env = Environment()
        fabric = Fabric(env, num_nodes=2, link_bandwidth=100.0, latency=0.5)
        done = run_transfers(fabric, env, [("a", 1, 1, 10_000, 0)])
        assert done["a"][0] == 0.0

    def test_zero_size_transfer_is_immediate(self):
        env = Environment()
        fabric = Fabric(env, num_nodes=2, link_bandwidth=100.0)
        done = run_transfers(fabric, env, [("a", 0, 1, 0, 0)])
        assert done["a"][0] == 0.0

    def test_invalid_nodes_rejected(self):
        env = Environment()
        fabric = Fabric(env, num_nodes=2, link_bandwidth=100.0)
        with pytest.raises(SimulationError):
            fabric.transfer(0, 5, 10)
        with pytest.raises(SimulationError):
            fabric.transfer(-1, 1, 10)

    def test_negative_size_rejected(self):
        env = Environment()
        fabric = Fabric(env, num_nodes=2, link_bandwidth=100.0)
        with pytest.raises(SimulationError):
            fabric.transfer(0, 1, -5)


class TestSharing:
    def test_rx_contention_halves_rate(self):
        env = Environment()
        fabric = Fabric(env, num_nodes=3, link_bandwidth=100.0, latency=0.0)
        done = run_transfers(
            fabric,
            env,
            [("a", 0, 2, 100, 0), ("b", 1, 2, 100, 0)],
        )
        assert done["a"][0] == pytest.approx(2.0)
        assert done["b"][0] == pytest.approx(2.0)

    def test_tx_contention_halves_rate(self):
        env = Environment()
        fabric = Fabric(env, num_nodes=3, link_bandwidth=100.0, latency=0.0)
        done = run_transfers(
            fabric,
            env,
            [("a", 0, 1, 100, 0), ("b", 0, 2, 100, 0)],
        )
        assert done["a"][0] == pytest.approx(2.0)
        assert done["b"][0] == pytest.approx(2.0)

    def test_full_duplex_no_interference(self):
        env = Environment()
        fabric = Fabric(env, num_nodes=2, link_bandwidth=100.0, latency=0.0)
        done = run_transfers(
            fabric,
            env,
            [("fwd", 0, 1, 100, 0), ("rev", 1, 0, 100, 0)],
        )
        assert done["fwd"][0] == pytest.approx(1.0)
        assert done["rev"][0] == pytest.approx(1.0)

    def test_rate_reallocated_when_flow_finishes(self):
        env = Environment()
        fabric = Fabric(env, num_nodes=3, link_bandwidth=100.0, latency=0.0)
        # Flow b starts halfway through a's solo run.
        done = run_transfers(
            fabric,
            env,
            [("a", 0, 1, 100, 0), ("b", 0, 2, 100, 0.5)],
        )
        # a: 50B alone (0.5s), then 50B at half rate (1.0s) -> 1.5s.
        assert done["a"][0] == pytest.approx(1.5)
        # b: 50B at half rate until a ends, then 50B at full -> 2.0s.
        assert done["b"][0] == pytest.approx(2.0)

    def test_incast_shares_among_n_senders(self):
        env = Environment()
        n = 5
        fabric = Fabric(env, num_nodes=n + 1, link_bandwidth=100.0, latency=0.0)
        transfers = [(f"s{i}", i, n, 100, 0) for i in range(n)]
        done = run_transfers(fabric, env, transfers)
        for i in range(n):
            assert done[f"s{i}"][0] == pytest.approx(n * 1.0)

    def test_switch_capacity_limits_aggregate(self):
        env = Environment()
        fabric = Fabric(
            env,
            num_nodes=4,
            link_bandwidth=100.0,
            latency=0.0,
            switch_bandwidth=100.0,
        )
        done = run_transfers(
            fabric,
            env,
            [("a", 0, 1, 100, 0), ("b", 2, 3, 100, 0)],
        )
        # Disjoint node pairs, but the 100 B/s switch is shared.
        assert done["a"][0] == pytest.approx(2.0)
        assert done["b"][0] == pytest.approx(2.0)


class TestAccounting:
    def test_stats_track_flows_and_bytes(self):
        env = Environment()
        fabric = Fabric(env, num_nodes=2, link_bandwidth=100.0)
        run_transfers(
            fabric, env, [("a", 0, 1, 100, 0), ("b", 1, 0, 50, 0)]
        )
        assert fabric.stats.flows_started == 2
        assert fabric.stats.flows_completed == 2
        assert fabric.stats.bytes_transferred == pytest.approx(150.0)

    def test_utilization_snapshot(self):
        env = Environment()
        fabric = Fabric(env, num_nodes=2, link_bandwidth=100.0, latency=0.0)
        measured = {}

        def sender(env):
            yield fabric.transfer(0, 1, 1000)

        def probe(env):
            yield env.timeout(1)
            measured["tx"] = fabric.utilization(0, "tx")
            measured["rx"] = fabric.utilization(1, "rx")
            measured["idle"] = fabric.utilization(1, "tx")

        env.process(sender(env))
        env.process(probe(env))
        env.run()
        assert measured["tx"] == pytest.approx(1.0)
        assert measured["rx"] == pytest.approx(1.0)
        assert measured["idle"] == 0.0

    def test_active_flows_listing(self):
        env = Environment()
        fabric = Fabric(env, num_nodes=2, link_bandwidth=100.0)
        fabric.transfer(0, 1, 1000)
        assert len(fabric.active_flows) == 1
        env.run()
        assert fabric.active_flows == []
