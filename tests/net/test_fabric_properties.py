"""Property-based tests for the network fabric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Fabric
from repro.sim import Environment

transfer_strategy = st.tuples(
    st.integers(min_value=0, max_value=3),  # src
    st.integers(min_value=0, max_value=3),  # dst
    st.floats(min_value=1.0, max_value=1e6),  # size
    st.floats(min_value=0.0, max_value=10.0),  # start offset
)


@given(transfers=st.lists(transfer_strategy, min_size=1, max_size=12))
@settings(max_examples=60, deadline=None)
def test_all_transfers_complete_and_respect_capacity(transfers):
    """Every flow completes, never faster than line rate allows."""
    bandwidth = 100.0
    env = Environment()
    fabric = Fabric(env, num_nodes=4, link_bandwidth=bandwidth, latency=0.0)
    completions = []

    def xfer(src, dst, size, start):
        if start:
            yield env.timeout(start)
        began = env.now
        yield fabric.transfer(src, dst, size)
        completions.append((src, dst, size, env.now - began))

    for src, dst, size, start in transfers:
        env.process(xfer(src, dst, size, start))
    env.run()

    assert len(completions) == len(transfers)
    for src, dst, size, duration in completions:
        if src == dst:
            assert duration == 0.0
        else:
            # A flow can never beat its share of the line rate.
            assert duration >= size / bandwidth - 1e-6


@given(
    sizes=st.lists(
        st.floats(min_value=1.0, max_value=1e5), min_size=1, max_size=10
    )
)
@settings(max_examples=60, deadline=None)
def test_byte_conservation(sizes):
    """Bytes accounted by the fabric equal the bytes submitted."""
    env = Environment()
    fabric = Fabric(env, num_nodes=3, link_bandwidth=50.0, latency=0.0)

    def xfer(index, size):
        yield fabric.transfer(index % 2, 2, size)

    for index, size in enumerate(sizes):
        env.process(xfer(index, size))
    env.run()
    assert fabric.stats.bytes_transferred == pytest.approx(
        sum(sizes), rel=1e-6
    )
    assert fabric.stats.flows_completed == len(sizes)


@given(
    n_senders=st.integers(min_value=1, max_value=6),
    size=st.floats(min_value=10.0, max_value=1e4),
)
@settings(max_examples=40, deadline=None)
def test_incast_completion_time_scales_linearly(n_senders, size):
    """n equal flows into one NIC finish at n x the solo duration."""
    bandwidth = 100.0
    env = Environment()
    fabric = Fabric(
        env, num_nodes=n_senders + 1, link_bandwidth=bandwidth, latency=0.0
    )
    finish = []

    def xfer(src):
        yield fabric.transfer(src, n_senders, size)
        finish.append(env.now)

    for src in range(n_senders):
        env.process(xfer(src))
    env.run()
    expected = n_senders * size / bandwidth
    for time in finish:
        assert time == pytest.approx(expected, rel=1e-6)
