"""Differential tests: heap waterfill and rate-reuse vs the naive paths.

Two optimizations ride the mega-component hot path and both claim
*bit-identical* rates:

* the lazy-invalidation min-heap replacing the per-round linear scan in
  ``Fabric._waterfill`` (engaged above ``waterfill_heap_cutoff``
  entries), and
* the rate-reuse fast path for single-flow add/remove churn against a
  big standing component (engaged at/above ``reuse_cutoff`` flows, with
  a proof obligation that falls back to the full solve when unmet).

Every test drives the same schedule through both variants — the cutoffs
are host-side knobs, so forcing either path is a one-line override —
and requires ``repr``-exact completion times.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Fabric
from repro.sim import Environment


def _run_schedule(
    num_nodes,
    schedule,
    switch=None,
    heap_cutoff=None,
    reuse_cutoff=None,
    incremental_cutoff=None,
):
    """Run a transfer schedule; returns repr'd completion times."""
    env = Environment()
    fabric = Fabric(
        env,
        num_nodes=num_nodes,
        link_bandwidth=100.0,
        latency=1e-4,
        switch_bandwidth=switch,
    )
    if heap_cutoff is not None:
        fabric.waterfill_heap_cutoff = heap_cutoff
    if reuse_cutoff is not None:
        fabric.reuse_cutoff = reuse_cutoff
    if incremental_cutoff is not None:
        fabric.incremental_cutoff = incremental_cutoff
    finished: list[tuple[int, str]] = []

    def xfer(index, src, dst, size, start):
        if start:
            yield env.timeout(start)
        yield fabric.transfer(src, dst, size)
        finished.append((index, repr(env.now)))

    for index, (src, dst, size, start) in enumerate(schedule):
        env.process(xfer(index, src, dst, size, start))
    env.run()
    assert len(finished) == len(schedule)
    return sorted(finished), fabric.stats


schedule_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),  # src
        st.integers(min_value=0, max_value=9),  # dst
        st.floats(min_value=1.0, max_value=5e4),  # size
        st.floats(min_value=0.0, max_value=5.0),  # start offset
    ),
    min_size=1,
    max_size=25,
)


@given(schedule=schedule_strategy)
@settings(max_examples=40, deadline=None)
def test_heap_matches_naive_scan(schedule):
    """Equal link bandwidths make duplicate shares the common case, so
    the strict-< first-seen tie-break is exercised constantly."""
    heap, _ = _run_schedule(10, schedule, heap_cutoff=0)
    naive, _ = _run_schedule(10, schedule, heap_cutoff=10**9)
    assert heap == naive


@given(schedule=schedule_strategy)
@settings(max_examples=15, deadline=None)
def test_heap_matches_naive_scan_with_switch(schedule):
    """The aggregate-switch entry takes the same heap path."""
    heap, _ = _run_schedule(10, schedule, switch=350.0, heap_cutoff=0)
    naive, _ = _run_schedule(10, schedule, switch=350.0, heap_cutoff=10**9)
    assert heap == naive


@given(schedule=schedule_strategy)
@settings(max_examples=40, deadline=None)
def test_reuse_matches_full_solve(schedule):
    """With the record built after every full solve (cutoff 1), each
    single-flow add/remove attempts the reuse proof; hits and fallbacks
    alike must leave the public schedule untouched."""
    reuse, _ = _run_schedule(
        10, schedule, reuse_cutoff=1, incremental_cutoff=10**9
    )
    plain, _ = _run_schedule(
        10, schedule, reuse_cutoff=10**9, incremental_cutoff=10**9
    )
    assert reuse == plain


def _seeded_schedule(seed, num_nodes, flows):
    rng = random.Random(seed)
    schedule = []
    for _ in range(flows):
        schedule.append(
            (
                rng.randrange(num_nodes),
                rng.randrange(num_nodes),
                rng.uniform(10.0, 8e4),
                rng.uniform(0.0, 20.0),
            )
        )
    return schedule


def test_seeded_heap_above_default_cutoff():
    """Big components cross the default heap cutoff on their own: the
    production configuration (no overrides) must match the forced-naive
    variant on a 60-node, 150-flow mix."""
    for seed in (11, 22, 33, 44, 55):
        schedule = _seeded_schedule(seed, 60, 150)
        heap, heap_stats = _run_schedule(60, schedule)
        naive, _ = _run_schedule(60, schedule, heap_cutoff=10**9)
        assert heap == naive, f"seed {seed}"
        assert repr(heap_stats.bytes_transferred) is not None


def test_seeded_reuse_churn_differential():
    """Five seeds of add/remove churn with reuse on vs off."""
    for seed in (1, 2, 3, 4, 20260809):
        schedule = _seeded_schedule(seed, 10, 80)
        reuse, reuse_stats = _run_schedule(
            10, schedule, reuse_cutoff=1, incremental_cutoff=10**9
        )
        plain, plain_stats = _run_schedule(
            10, schedule, reuse_cutoff=10**9, incremental_cutoff=10**9
        )
        assert reuse == plain, f"seed {seed}"
        assert repr(reuse_stats.bytes_transferred) == repr(
            plain_stats.bytes_transferred
        )
        # Reuse never engaged on the plain variant.
        assert plain_stats.reuse_hits == 0
        assert plain_stats.reuse_fallbacks == 0


def test_star_churn_hits_and_fallbacks():
    """The designed hot pattern: a standing fan-in star plus single-flow
    churn.  Non-violating churn flows ride the reuse record; a violator
    into the saturated anchor and a non-LIFO completion both take the
    documented full-solve fallback."""
    env = Environment()
    fabric = Fabric(env, num_nodes=10, link_bandwidth=100.0, latency=0.0)
    fabric.reuse_cutoff = 4
    anchor, spare = 8, 9

    def xfer(src, dst, size):
        yield fabric.transfer(src, dst, size)

    # Distinct sizes: the star flows finish one at a time, so removals
    # reach the reuse gate individually.
    for sender in range(4):
        env.process(xfer(sender, anchor, 100.0 + 8.0 * sender))

    def churn():
        yield env.timeout(1.0)
        # Hit: the sender's NIC has plenty of residual headroom and the
        # spare node is idle, so the proof holds for add and (LIFO)
        # remove alike.
        yield from xfer(0, spare, 30.0)
        # Fallback: the anchor's rx NIC has zero residual, the proof
        # fails, and the removal later finds an empty stack.
        yield from xfer(5, anchor, 10.0)
        # Fallback (non-LIFO): this long flow is still in flight when
        # the first star flow completes, so that removal is not the
        # stack top and must full-solve.
        yield from xfer(1, spare, 500.0)

    env.process(churn())
    env.run()
    stats = fabric.stats
    assert stats.reuse_hits >= 3, stats
    assert stats.reuse_fallbacks >= 3, stats
    assert stats.flows_completed == 7


def test_reuse_disabled_below_cutoff():
    """Small flow tables never pay for record building: the default
    cutoff keeps every reuse counter at zero."""
    env = Environment()
    fabric = Fabric(env, num_nodes=6, link_bandwidth=100.0, latency=0.0)
    assert fabric.reuse_cutoff > 12

    def xfer(src, dst, size):
        yield fabric.transfer(src, dst, size)

    for index in range(12):
        env.process(xfer(index % 6, (index + 1) % 6, 1e3 * (index + 1)))
    env.run()
    assert fabric.stats.reuse_hits == 0
    assert fabric.stats.reuse_fallbacks == 0
    assert fabric._reuse is None


def test_switch_component_never_builds_a_record():
    """The reuse proof assumes per-NIC bottlenecks only; a fabric with
    an aggregate switch must never install the record."""
    env = Environment()
    fabric = Fabric(
        env,
        num_nodes=6,
        link_bandwidth=100.0,
        latency=0.0,
        switch_bandwidth=250.0,
    )
    fabric.reuse_cutoff = 1

    def xfer(src, dst, size):
        yield fabric.transfer(src, dst, size)

    for index in range(10):
        env.process(xfer(index % 6, (index + 2) % 6, 500.0 * (index + 1)))
    env.run()
    assert fabric._reuse is None
    assert fabric.stats.reuse_hits == 0
