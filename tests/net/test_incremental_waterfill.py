"""Differential tests: incremental waterfill vs the full progressive fill.

The fabric re-solves only the connected component of resources touched by
a flow add/remove.  These tests drive randomized transfer schedules
through both the incremental fabric and a variant forced to always run
the full solve, and require *bit-identical* completion times — the same
guarantee the repository's determinism pins rely on.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Fabric
from repro.net.fabric import Flow
from repro.sim import Environment


class FullSolveFabric(Fabric):
    """A fabric that never takes the incremental path."""

    def _dirty_component(self, dirty):
        return None


def _run_schedule(fabric_cls, num_nodes, schedule, switch=None):
    """Run a transfer schedule; returns repr'd completion times."""
    env = Environment()
    fabric = fabric_cls(
        env,
        num_nodes=num_nodes,
        link_bandwidth=100.0,
        latency=1e-4,
        switch_bandwidth=switch,
    )
    # Force the restricted path at any flow-table size so the
    # differential actually exercises the incremental solver.
    fabric.incremental_cutoff = 0
    finished: list[tuple[int, str]] = []

    def xfer(index, src, dst, size, start):
        if start:
            yield env.timeout(start)
        yield fabric.transfer(src, dst, size)
        finished.append((index, repr(env.now)))

    for index, (src, dst, size, start) in enumerate(schedule):
        env.process(xfer(index, src, dst, size, start))
    env.run()
    assert len(finished) == len(schedule)
    return sorted(finished), fabric.stats.bytes_transferred


schedule_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),  # src
        st.integers(min_value=0, max_value=9),  # dst
        st.floats(min_value=1.0, max_value=5e4),  # size
        st.floats(min_value=0.0, max_value=5.0),  # start offset
    ),
    min_size=1,
    max_size=25,
)


@given(schedule=schedule_strategy)
@settings(max_examples=40, deadline=None)
def test_incremental_matches_full_solve(schedule):
    incremental, inc_bytes = _run_schedule(Fabric, 10, schedule)
    full, full_bytes = _run_schedule(FullSolveFabric, 10, schedule)
    assert incremental == full
    assert repr(inc_bytes) == repr(full_bytes)


@given(schedule=schedule_strategy)
@settings(max_examples=15, deadline=None)
def test_switch_fabric_matches_full_solve(schedule):
    """With an aggregate switch every solve falls back to full — but the
    public behavior must still match the forced-full variant exactly."""
    incremental, _ = _run_schedule(Fabric, 10, schedule, switch=350.0)
    full, _ = _run_schedule(FullSolveFabric, 10, schedule, switch=350.0)
    assert incremental == full


def test_seeded_dense_and_sparse_mix():
    """A deterministic heavier mix: overlapping bursts, disjoint pairs,
    and staggered completions (exercises removal-side dirty sets)."""
    rng = random.Random(20260809)
    schedule = []
    for _ in range(120):
        src = rng.randrange(12)
        dst = rng.randrange(12)
        schedule.append(
            (src, dst, rng.uniform(10.0, 8e4), rng.uniform(0.0, 20.0))
        )
    # Plus guaranteed-disjoint pairs to hit the restricted-solve path.
    for pair in range(6):
        schedule.append((2 * pair, 2 * pair + 1, 5e4, 0.5 * pair))
    incremental, inc_bytes = _run_schedule(Fabric, 12, schedule)
    full, full_bytes = _run_schedule(FullSolveFabric, 12, schedule)
    assert incremental == full
    assert repr(inc_bytes) == repr(full_bytes)


def test_disjoint_pairs_take_restricted_solve():
    """Disjoint node pairs must actually exercise the incremental path
    (a component strictly smaller than the flow table)."""
    env = Environment()
    fabric = Fabric(env, num_nodes=8, link_bandwidth=100.0, latency=0.0)
    fabric.incremental_cutoff = 0
    taken: list[int] = []
    original = Fabric._dirty_component

    def spy(self, dirty):
        component = original(self, dirty)
        taken.append(-1 if component is None else len(component))
        return component

    fabric._dirty_component = spy.__get__(fabric)

    def xfer(src, dst):
        yield fabric.transfer(src, dst, 1e4)

    def main():
        # Four disjoint pairs started while earlier ones are in flight.
        for pair in range(4):
            env.process(xfer(2 * pair, 2 * pair + 1))
            yield env.timeout(1.0)

    env.process(main())
    env.run()
    assert any(size >= 0 for size in taken), taken
    # Later adds see several active disjoint components: the dirty
    # component must stay smaller than the whole flow table.
    assert any(0 <= size <= 2 for size in taken[1:]), taken


def test_small_tables_skip_component_discovery():
    """At or below ``incremental_cutoff`` the reallocation goes straight
    to the full solve: the BFS must never run (it costs more than it can
    save on small flow tables)."""
    env = Environment()
    fabric = Fabric(env, num_nodes=8, link_bandwidth=100.0, latency=0.0)
    assert fabric.incremental_cutoff > 0
    calls: list[object] = []

    def spy(self, dirty):
        calls.append(dirty)
        return None

    fabric._dirty_component = spy.__get__(fabric)

    def xfer(src, dst):
        yield fabric.transfer(src, dst, 1e4)

    for pair in range(4):
        env.process(xfer(2 * pair, 2 * pair + 1))
    env.run()
    assert calls == []
    assert fabric.stats.flows_completed == 4


def test_index_tracks_adds_and_removes():
    """The resource index must drain back to empty with the flow table."""
    env = Environment()
    fabric = Fabric(env, num_nodes=6, link_bandwidth=100.0, latency=0.0)
    # Force restricted solves so the lazily-built index is actually
    # constructed and then maintained through every add/remove.
    fabric.incremental_cutoff = 0

    def xfer(src, dst, size):
        yield fabric.transfer(src, dst, size)

    for index in range(12):
        env.process(xfer(index % 6, (index + 1) % 6, 1e3 * (index + 1)))
    env.run()
    assert fabric._flows == {}
    assert fabric._by_resource == {}
    assert fabric.stats.flows_completed == 12


def test_unindex_is_exact():
    """Unindexing one flow leaves siblings on the shared NIC indexed."""
    env = Environment()
    fabric = Fabric(env, num_nodes=4, link_bandwidth=100.0, latency=0.0)
    f1 = Flow(fid=1, src=0, dst=1, size=10.0, remaining=10.0)
    f2 = Flow(fid=2, src=0, dst=2, size=10.0, remaining=10.0)
    fabric._index_flow(f1)
    fabric._index_flow(f2)
    fabric._unindex_flow(f1)
    assert 0 in fabric._by_resource  # tx NIC of node 0 still has f2
    assert list(fabric._by_resource[0]) == [2]
    fabric._unindex_flow(f2)
    assert fabric._by_resource == {}
