"""Tests for the timeline recorder and Gantt rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics import TimelineRecorder
from repro.metrics.timeline import Span


class TestSpan:
    def test_duration(self):
        assert Span(0, "compute", 1.0, 3.5).duration == 2.5

    def test_reversed_span_rejected(self):
        with pytest.raises(ConfigurationError):
            Span(0, "compute", 3.0, 1.0)


class TestRecorder:
    def make_recorder(self):
        recorder = TimelineRecorder()
        recorder.record(0, "compute", 0.0, 4.0, "T-1")
        recorder.record(0, "fetch", 4.0, 5.0, "T-2")
        recorder.record(0, "compute", 5.0, 8.0, "T-2")
        recorder.record(1, "compute", 0.0, 2.0, "T-1")
        return recorder

    def test_filtering(self):
        recorder = self.make_recorder()
        assert len(recorder.spans()) == 4
        assert len(recorder.spans(worker=0)) == 3
        assert len(recorder.spans(kind="compute")) == 3
        assert len(recorder.spans(worker=0, kind="fetch")) == 1

    def test_busy_time_and_fraction(self):
        recorder = self.make_recorder()
        assert recorder.busy_time(0) == 7.0
        assert recorder.busy_time(1) == 2.0
        assert recorder.busy_fraction(0) == pytest.approx(7.0 / 8.0)

    def test_load_imbalance(self):
        recorder = self.make_recorder()
        # times (7, 2): mean 4.5, pstdev 2.5.
        assert recorder.load_imbalance() == pytest.approx(2.5 / 4.5)

    def test_balanced_trace_has_zero_imbalance(self):
        recorder = TimelineRecorder()
        for worker in range(4):
            recorder.record(worker, "compute", 0.0, 3.0)
        assert recorder.load_imbalance() == 0.0

    def test_empty_recorder(self):
        recorder = TimelineRecorder()
        assert recorder.workers() == []
        assert recorder.end_time() == 0.0
        assert recorder.load_imbalance() == 0.0
        assert recorder.render_gantt() == "(empty timeline)"

    def test_gantt_glyphs(self):
        recorder = self.make_recorder()
        gantt = recorder.render_gantt(width=16)
        lines = gantt.splitlines()
        assert lines[1].startswith("W0: ")
        assert "#" in lines[1]
        assert "~" in lines[1]
        assert "." in lines[2]  # worker 1 idles after t=2

    def test_gantt_width_validated(self):
        with pytest.raises(ConfigurationError):
            self.make_recorder().render_gantt(width=3)

    def test_gantt_paints_sub_cell_spans(self):
        # A span much shorter than one cell must still paint one cell —
        # regression for short fetches vanishing from the chart.
        recorder = TimelineRecorder()
        recorder.record(0, "compute", 0.0, 100.0)
        recorder.record(1, "fetch", 50.0, 50.001)
        gantt = recorder.render_gantt(width=20)
        w1_row = gantt.splitlines()[2]
        assert w1_row.startswith("W1: ")
        assert "~" in w1_row

    def test_gantt_sub_cell_span_at_the_horizon_edge(self):
        recorder = TimelineRecorder()
        recorder.record(0, "compute", 0.0, 10.0)
        recorder.record(0, "fetch", 9.9999, 10.0)  # rounds past last cell
        gantt = recorder.render_gantt(width=10)
        assert "#" in gantt.splitlines()[1]  # still renders, no IndexError


class TestRuntimeIntegration:
    def test_fela_records_compute_spans(self, vgg19_partition):
        from repro.core import FelaConfig, FelaRuntime

        recorder = TimelineRecorder()
        config = FelaConfig(
            partition=vgg19_partition,
            total_batch=128,
            num_workers=8,
            weights=(1, 2, 8),
            iterations=1,
        )
        FelaRuntime(config, recorder=recorder).run()
        # Every token shows up as exactly one compute span.
        compute_spans = recorder.spans(kind="compute")
        assert len(compute_spans) == sum(config.token_counts())
        labels = {span.label for span in compute_spans}
        assert labels == {"T-1", "T-2", "T-3"}

    def test_straggler_visible_in_imbalance(self, vgg19_partition):
        from repro.core import FelaConfig, FelaRuntime
        from repro.stragglers import RoundRobinStraggler

        config = FelaConfig(
            partition=vgg19_partition,
            total_batch=512,
            num_workers=8,
            weights=(1, 2, 8),
            iterations=1,
        )
        balanced = TimelineRecorder()
        FelaRuntime(config, recorder=balanced).run()
        skewed = TimelineRecorder()
        FelaRuntime(
            config,
            straggler=RoundRobinStraggler(6.0),
            recorder=skewed,
        ).run()
        assert skewed.load_imbalance() > balanced.load_imbalance()
