"""Unit tests for the paper's metrics (Equations 3 and 4)."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics import (
    IterationRecord,
    RunResult,
    average_throughput,
    per_iteration_delay,
)


def make_result(total_time=10.0, iterations=5, batch=128, name="fela"):
    records = tuple(
        IterationRecord(
            iteration=i,
            start=i * total_time / iterations,
            end=(i + 1) * total_time / iterations,
        )
        for i in range(iterations)
    )
    return RunResult(
        runtime_name=name,
        model_name="vgg19",
        total_batch=batch,
        iterations=iterations,
        total_time=total_time,
        records=records,
    )


class TestEquation3:
    def test_formula(self):
        assert average_throughput(128, 100, 64.0) == 200.0

    def test_result_property(self):
        result = make_result(total_time=10.0, iterations=5, batch=128)
        assert result.average_throughput == 64.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            average_throughput(128, 100, 0.0)
        with pytest.raises(ConfigurationError):
            average_throughput(0, 100, 1.0)


class TestEquation4:
    def test_formula(self):
        straggler = make_result(total_time=20.0)
        baseline = make_result(total_time=10.0)
        assert per_iteration_delay(straggler, baseline) == 2.0

    def test_iteration_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            per_iteration_delay(
                make_result(iterations=5), make_result(iterations=4)
            )

    def test_zero_when_no_slowdown(self):
        assert per_iteration_delay(make_result(), make_result()) == 0.0


class TestRunResult:
    def test_record_count_enforced(self):
        with pytest.raises(ConfigurationError):
            RunResult(
                runtime_name="dp",
                model_name="vgg19",
                total_batch=128,
                iterations=5,
                total_time=10.0,
                records=(),
            )

    def test_nonpositive_time_rejected(self):
        with pytest.raises(ConfigurationError):
            make_result(total_time=0.0)

    def test_iteration_times(self):
        result = make_result(total_time=10.0, iterations=5)
        assert result.iteration_times() == pytest.approx([2.0] * 5)
        assert result.mean_iteration_time == pytest.approx(2.0)

    def test_record_duration(self):
        record = IterationRecord(iteration=0, start=1.5, end=4.0)
        assert record.duration == 2.5


class TestDescribe:
    def test_describe_contains_key_metrics(self):
        result = make_result(total_time=10.0, iterations=5, batch=128)
        text = result.describe()
        assert "fela on vgg19" in text
        assert "avg throughput" in text
        assert "64.0" in text

    def test_describe_includes_stats_when_present(self, vgg19_partition):
        from repro.core import FelaConfig, FelaRuntime

        config = FelaConfig(
            partition=vgg19_partition,
            total_batch=128,
            num_workers=8,
            weights=(1, 2, 8),
            iterations=2,
        )
        text = FelaRuntime(config).run().describe()
        assert "network" in text
        assert "fetching conflicts" in text
        assert "work (last iter)" in text
