"""Unit tests for SubModel / Partition invariants."""

import pytest

from repro.errors import PartitionError
from repro.partition import Partition, SubModel, make_submodel
from repro.partition.submodel import _round_pow2


class TestRoundPow2:
    @pytest.mark.parametrize(
        "value,expected",
        [(1, 1), (2, 2), (3, 2), (5, 4), (6, 4), (7, 8), (48, 32), (100, 128)],
    )
    def test_rounding(self, value, expected):
        assert _round_pow2(value) == expected

    def test_below_one_clamps(self):
        assert _round_pow2(0.3) == 1


class TestSubModel:
    def test_costs_aggregate_members(self, vgg19_partition):
        sm = vgg19_partition[0]
        assert sm.forward_flops == pytest.approx(
            sum(p.forward_flops for p in sm.layers)
        )
        assert sm.param_bytes == sm.param_count * 4

    def test_boundary_sizes(self, vgg19_partition):
        sm1, sm2, sm3 = vgg19_partition
        # SM-1 output shape feeds SM-2's input.
        assert sm1.output_floats > 0
        assert sm2.input_floats == sm1.output_floats
        assert sm3.input_floats == sm2.output_floats

    def test_names_are_one_based(self, vgg19_partition):
        assert [sm.name for sm in vgg19_partition] == ["SM-1", "SM-2", "SM-3"]

    def test_empty_submodel_rejected(self):
        with pytest.raises(PartitionError):
            SubModel(index=0, layers=(), threshold_batch=16)

    def test_threshold_uses_max_member(self, vgg19, profiler):
        from repro.partition import layer_thresholds

        thresholds = layer_thresholds(vgg19, profiler)
        layers = vgg19.layers[:2]  # conv1, conv2
        sm = make_submodel(0, layers, thresholds)
        assert sm.threshold_batch == max(
            thresholds[p.index] for p in layers if p.trainable
        )

    def test_pool_only_submodel_threshold_one(self, vgg19, profiler):
        pool = next(p for p in vgg19.layers if not p.trainable)
        sm = make_submodel(0, [pool], {})
        assert sm.threshold_batch == 1
        assert not sm.communication_intensive


class TestPartition:
    def test_non_contiguous_coverage_rejected(self, vgg19, vgg19_partition):
        broken = (vgg19_partition[0], vgg19_partition[2])
        with pytest.raises(PartitionError):
            Partition(model=vgg19, submodels=broken)

    def test_empty_partition_rejected(self, vgg19):
        with pytest.raises(PartitionError):
            Partition(model=vgg19, submodels=())

    def test_describe_mentions_every_submodel(self, vgg19_partition):
        text = vgg19_partition.describe()
        for sm in vgg19_partition:
            assert sm.name in text

    def test_indexing(self, vgg19_partition):
        assert len(vgg19_partition) == 3
        assert vgg19_partition[1].index == 1
        assert [sm.index for sm in vgg19_partition] == [0, 1, 2]
