"""Unit tests for the bin-partitioned method and published partitions."""

import pytest

from repro.errors import PartitionError
from repro.models import get_model
from repro.partition import (
    bin_partition,
    layer_thresholds,
    paper_partition,
    partition_by_counts,
)


class TestPaperPartition:
    def test_vgg19_published_split(self, vgg19, profiler):
        partition = paper_partition(vgg19, profiler)
        counts = [len(sm.trainable_layers) for sm in partition]
        assert counts == [8, 8, 3]  # L1-8 / L9-16 / L17-19

    def test_googlenet_published_split(self, googlenet, profiler):
        partition = paper_partition(googlenet, profiler)
        counts = [len(sm.trainable_layers) for sm in partition]
        assert counts == [4, 5, 3]  # units 1-4 / 5-9 / 10-12

    def test_vgg19_thresholds_increase_with_depth(self, vgg19_partition):
        thresholds = vgg19_partition.thresholds
        assert thresholds == sorted(thresholds)
        assert thresholds[0] < thresholds[-1]

    def test_only_fc_submodel_is_comm_intensive(self, vgg19_partition):
        flags = [sm.communication_intensive for sm in vgg19_partition]
        assert flags == [False, False, True]

    def test_unknown_model_rejected(self, profiler):
        with pytest.raises(PartitionError):
            paper_partition(get_model("alexnet"), profiler)


class TestBinPartition:
    def test_vgg19_groups_convs_before_fcs(self, vgg19, profiler):
        partition = bin_partition(vgg19, profiler)
        # Front convs together; the FC tail split off.
        assert len(partition) >= 3
        assert partition[0].threshold_batch < partition[-1].threshold_batch
        assert not partition[0].communication_intensive
        assert partition[len(partition) - 1].communication_intensive

    def test_strict_binning_makes_finer_groups(self, vgg19, profiler):
        loose = bin_partition(vgg19, profiler, jitter_bins=1.0)
        strict = bin_partition(vgg19, profiler, jitter_bins=0.0)
        assert len(strict) >= len(loose)

    def test_bad_bin_width(self, vgg19, profiler):
        with pytest.raises(PartitionError):
            bin_partition(vgg19, profiler, bin_width=0)

    def test_synthetic_monotone_thresholds_three_groups(self):
        """Thresholds 16,16,16,64,64,2048 split at the two jumps."""
        model = get_model("alexnet")  # 8 trainable layers
        trainable = model.trainable_layers
        fake = {}
        values = [16, 16, 16, 16, 64, 64, 2048, 2048]
        for profile, value in zip(trainable, values):
            fake[profile.index] = value
        partition = partition_by_counts(model, [4, 2, 2], fake)
        assert partition.thresholds == [16, 64, 2048]


class TestPartitionByCounts:
    def test_counts_must_sum(self, vgg19, profiler):
        with pytest.raises(PartitionError):
            partition_by_counts(vgg19, [8, 8], profiler=profiler)

    def test_zero_count_rejected(self, vgg19, profiler):
        with pytest.raises(PartitionError):
            partition_by_counts(vgg19, [0, 16, 3], profiler=profiler)

    def test_covers_model_exactly(self, vgg19_partition, vgg19):
        covered = [
            p.index for sm in vgg19_partition for p in sm.layers
        ]
        assert covered == list(range(len(vgg19)))

    def test_pools_attach_to_preceding_group(self, vgg19, profiler):
        partition = partition_by_counts(vgg19, [8, 8, 3], profiler=profiler)
        # The pool after conv16 belongs to SM-2, not SM-3.
        sm2_names = [p.name for p in partition[1].layers]
        assert any(name.startswith("pool") for name in sm2_names)
        sm3_names = [p.name for p in partition[2].layers]
        assert sm3_names == ["fc1", "fc2", "fc3"]


class TestLayerThresholds:
    def test_maps_trainable_indices(self, vgg19, profiler):
        thresholds = layer_thresholds(vgg19, profiler)
        trainable_indices = {p.index for p in vgg19.trainable_layers}
        assert set(thresholds) == trainable_indices
        assert all(t >= 1 for t in thresholds.values())


class TestQuantilePartition:
    def test_requested_group_count(self, vgg19, profiler):
        from repro.partition import quantile_partition

        for k in (1, 2, 3, 5):
            partition = quantile_partition(vgg19, k, profiler)
            assert len(partition) == k

    def test_googlenet_flat_thresholds_fall_back_to_even(
        self, googlenet, profiler
    ):
        """GoogLeNet@32x32's analytic thresholds are flat (all at the
        sweep cap): the quantile method falls back to near-even counts,
        close to the paper's 4/5/3."""
        from repro.partition import quantile_partition

        partition = quantile_partition(googlenet, 3, profiler)
        counts = [len(sm.trainable_layers) for sm in partition]
        assert counts == [4, 4, 4]

    def test_boundaries_sit_on_threshold_jumps(self, vgg19, profiler):
        from repro.partition import quantile_partition

        partition = quantile_partition(vgg19, 3, profiler)
        # Monotone group thresholds, strictly increasing at the cuts.
        thresholds = partition.thresholds
        assert thresholds[0] < thresholds[1] < thresholds[2]

    def test_validation(self, vgg19, profiler):
        from repro.partition import quantile_partition

        with pytest.raises(PartitionError):
            quantile_partition(vgg19, 0, profiler)
        with pytest.raises(PartitionError):
            quantile_partition(vgg19, 100, profiler)

    def test_runs_under_fela(self, googlenet, profiler):
        from repro.core import FelaConfig, FelaRuntime
        from repro.partition import quantile_partition

        partition = quantile_partition(googlenet, 3, profiler)
        config = FelaConfig(
            partition=partition,
            total_batch=256,
            num_workers=8,
            weights=(1, 1, 2),
            iterations=2,
        )
        assert FelaRuntime(config).run().average_throughput > 0
