"""Shared fixtures.

Model building and profiling are deterministic and moderately expensive,
so they are session-scoped; anything carrying simulation state
(environments, clusters, runtimes) is function-scoped by construction —
each test builds its own.
"""

from __future__ import annotations

import pytest

from repro.hardware import ClusterSpec, GpuSpec
from repro.models import get_model
from repro.partition import paper_partition
from repro.profiling import ThroughputProfiler


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the persistent result cache at a per-test directory.

    Keeps CLI tests (and anything else that constructs a default
    ``ResultCache``) from reading or polluting ``~/.cache/fela-repro``.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))


@pytest.fixture(scope="session")
def vgg19():
    return get_model("vgg19")


@pytest.fixture(scope="session")
def googlenet():
    return get_model("googlenet")


@pytest.fixture(scope="session")
def profiler():
    return ThroughputProfiler()


@pytest.fixture(scope="session")
def vgg19_partition(vgg19, profiler):
    return paper_partition(vgg19, profiler)


@pytest.fixture(scope="session")
def googlenet_partition(googlenet, profiler):
    return paper_partition(googlenet, profiler)


@pytest.fixture()
def small_cluster_spec():
    """A 4-node cluster with fast, simple numbers for unit arithmetic."""
    return ClusterSpec(
        num_nodes=4,
        link_bandwidth=1e9,
        network_efficiency=1.0,
        latency=0.0,
        gpu=GpuSpec(),
    )


@pytest.fixture()
def default_gpu():
    return GpuSpec()
