"""Runtime invariant checker: unit breaches + full-run integration.

The integration half is the acceptance test of ISSUE 1: the token
runtime must pass token conservation with invariants enabled across all
three scheduling policies (ADS/HF/CTD, each toggled) and under
straggler injection, on all three sync modes and the pipelined runtime.
"""

import pytest

from repro.analysis import GradientLedger, InvariantChecker
from repro.core import (
    FelaConfig,
    FelaRuntime,
    PipelinedFelaRuntime,
    SyncMode,
)
from repro.core.tokens import SampleRange, Token
from repro.errors import InvariantViolation
from repro.hardware import Cluster, ClusterSpec
from repro.sim import Environment
from repro.stragglers import ProbabilityStraggler, RoundRobinStraggler


def make_token(tid, level=0, iteration=0, ordinal=0, home=0, deps=()):
    return Token(
        tid=tid,
        level=level,
        iteration=iteration,
        ordinal=ordinal,
        samples=SampleRange(0, 16),
        deps=deps,
        home_worker=home,
    )


class TestLifecycleBreaches:
    def test_duplicate_distribution_raises(self):
        checker = InvariantChecker()
        token = make_token(0)
        checker.on_minted(token)
        checker.on_assigned(token, 0)
        with pytest.raises(InvariantViolation, match="distributed twice"):
            checker.on_assigned(token, 1)

    def test_completion_without_assignment_raises(self):
        checker = InvariantChecker()
        token = make_token(0)
        checker.on_minted(token)
        with pytest.raises(InvariantViolation, match="without being"):
            checker.on_completed(token, 0)

    def test_double_mint_raises(self):
        checker = InvariantChecker()
        token = make_token(0)
        checker.on_minted(token)
        with pytest.raises(InvariantViolation, match="minted twice"):
            checker.on_minted(token)

    def test_assignment_before_mint_raises(self):
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation, match="before it was"):
            checker.on_assigned(make_token(0), 0)

    def test_violation_carries_serializable_snapshot(self):
        checker = InvariantChecker()
        token = make_token(0)
        checker.on_minted(token)
        checker.on_assigned(token, 0)
        with pytest.raises(InvariantViolation) as excinfo:
            checker.on_assigned(token, 1)
        snapshot = excinfo.value.snapshot
        assert snapshot["minted_total"] == 1
        assert "snapshot" in str(excinfo.value)
        assert excinfo.value.serialized_snapshot().startswith("{")

    def test_sync_before_level_complete_raises(self):
        checker = InvariantChecker()
        token = make_token(0)
        checker.on_minted(token)
        with pytest.raises(InvariantViolation, match="before the level"):
            checker.on_sync_start(0, 0, [0, 1])

    def test_double_sync_raises(self):
        checker = InvariantChecker()
        token = make_token(0)
        checker.on_minted(token)
        checker.on_assigned(token, 0)
        checker.on_completed(token, 0)
        checker.on_sync_start(0, 0, [0])
        with pytest.raises(InvariantViolation, match="twice"):
            checker.on_sync_start(0, 0, [0])


class TestClockMonotonicity:
    def test_monitor_accepts_forward_time(self):
        env = Environment()
        checker = InvariantChecker()
        checker.attach_env(env)
        env.timeout(1.0)
        env.timeout(2.0)
        env.run()
        assert checker.checks >= 2

    def test_monitor_rejects_backwards_time(self):
        checker = InvariantChecker()
        checker._on_step(5.0, None)
        with pytest.raises(InvariantViolation, match="backwards"):
            checker._on_step(4.0, None)


class TestGradientLedger:
    def test_balanced_collective_passes(self):
        ledger = GradientLedger()
        handle = ledger.open([0, 1, 2, 3], 100.0)
        ledger.close(handle, 2 * 3 * 100.0)
        ledger.assert_drained()
        assert ledger.closed == 1

    def test_wrong_byte_volume_raises(self):
        ledger = GradientLedger()
        handle = ledger.open([0, 1, 2, 3], 100.0)
        with pytest.raises(InvariantViolation, match="byte volume"):
            ledger.close(handle, 100.0)

    def test_unclosed_collective_raises_at_drain(self):
        ledger = GradientLedger()
        ledger.open([0, 1], 10.0, context=(0, 1))
        with pytest.raises(InvariantViolation, match="still open"):
            ledger.assert_drained()

    def test_double_close_raises(self):
        ledger = GradientLedger()
        handle = ledger.open([0, 1], 10.0)
        ledger.close(handle, 2 * 10.0)
        with pytest.raises(InvariantViolation, match="closed twice"):
            ledger.close(handle, 2 * 10.0)


def run_checked(partition, runtime_cls=FelaRuntime, straggler=None,
                **kwargs):
    defaults = dict(
        partition=partition,
        total_batch=128,
        num_workers=8,
        weights=(1, 2, 8),
        conditional_subset_size=2,
        iterations=3,
    )
    defaults.update(kwargs)
    config = FelaConfig(**defaults)
    checker = InvariantChecker()
    cluster = Cluster(ClusterSpec(num_nodes=config.num_workers))
    result = runtime_cls(
        config, cluster, straggler=straggler, invariants=checker
    ).run()
    return checker, result


class TestIntegration:
    """Full runs with the checker on: conservation must hold throughout."""

    @pytest.mark.parametrize(
        "toggles",
        [
            {},
            {"ads_enabled": False},
            {"hf_enabled": False},
            {"ctd_enabled": False},
            {"ads_enabled": False, "hf_enabled": False,
             "ctd_enabled": False},
        ],
        ids=["all-on", "no-ads", "no-hf", "no-ctd", "all-off"],
    )
    def test_policy_matrix_conserves_tokens(self, vgg19_partition,
                                            toggles):
        checker, result = run_checked(vgg19_partition, **toggles)
        assert result.total_time > 0
        snapshot = checker.snapshot()
        assert snapshot["buffered"] == 0
        assert snapshot["in_flight"] == 0
        assert snapshot["minted_total"] == snapshot["completed_total"]
        assert snapshot["collectives_closed"] == 3 * 3  # iters x levels

    @pytest.mark.parametrize(
        "mode",
        [
            {"sync_mode": SyncMode.BSP},
            {"sync_mode": SyncMode.SSP, "staleness": 2},
            {"sync_mode": SyncMode.ASP},
        ],
        ids=["bsp", "ssp", "asp"],
    )
    def test_sync_modes_conserve_tokens(self, vgg19_partition, mode):
        checker, _ = run_checked(vgg19_partition, **mode)
        assert checker.snapshot()["in_flight"] == 0

    def test_straggler_scenario_conserves_tokens(self, vgg19_partition):
        checker, result = run_checked(
            vgg19_partition,
            straggler=ProbabilityStraggler(0.3, 2.0, seed=7),
            iterations=4,
        )
        assert len(result.records) == 4
        assert checker.snapshot()["closed_iterations"] == [0, 1, 2, 3]

    def test_round_robin_straggler_with_pipelining(self, vgg19_partition):
        checker, result = run_checked(
            vgg19_partition,
            runtime_cls=PipelinedFelaRuntime,
            straggler=RoundRobinStraggler(2.0),
            sync_mode=SyncMode.SSP,
            staleness=2,
        )
        assert len(result.records) == 3
        snapshot = checker.snapshot()
        assert snapshot["buffered"] == 0
        assert snapshot["in_flight"] == 0

    def test_checker_actually_ran(self, vgg19_partition):
        checker, _ = run_checked(vgg19_partition)
        assert checker.checks > 100
        assert checker.ledger.bytes_observed > 0
