"""The codebase must satisfy its own lint rules.

This is the repository's determinism contract as a test: any wall-clock
read, unseeded RNG call, protocol-breaking yield, mutable default, or
float-equality comparison introduced anywhere in ``src`` (or the test
and benchmark trees) fails CI here, not in a flaky figure three PRs
later.
"""

import pathlib

from repro.analysis import lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _lint(relative: str):
    target = REPO_ROOT / relative
    assert target.exists(), f"missing tree: {target}"
    return lint_paths([target])


def test_src_is_clean():
    violations = _lint("src")
    assert violations == [], "\n".join(v.render() for v in violations)


def test_tests_are_clean():
    violations = _lint("tests")
    assert violations == [], "\n".join(v.render() for v in violations)


def test_benchmarks_are_clean():
    violations = _lint("benchmarks")
    assert violations == [], "\n".join(v.render() for v in violations)


def test_examples_are_clean():
    violations = _lint("examples")
    assert violations == [], "\n".join(v.render() for v in violations)
