"""Each FELA1xx rule on minimal synthetic programs, with negatives."""

from repro.analysis.flow.callgraph import Program
from repro.analysis.flow.facts import extract_module_facts
from repro.analysis.flow.rules import FLOW_RULES, FlowFinding, evaluate


def findings_for(*files):
    program = Program(
        extract_module_facts(source, path) for path, source in files
    )
    return evaluate(program)


def rules_hit(findings):
    return {finding.rule_id for finding in findings}


class TestFELA101:
    def test_laundered_wall_clock_flagged_with_chain(self):
        findings = findings_for(
            (
                "src/repro/sim/a.py",
                "import time\n"
                "def raw():\n"
                "    return time.time()\n"
                "def wrap():\n"
                "    return raw()\n"
                "def proc(env):\n"
                "    yield env.timeout(wrap())\n",
            ),
        )
        (finding,) = [f for f in findings if f.rule_id == "FELA101"]
        assert "wall-clock" in finding.message
        assert finding.trace == (
            "repro.sim.a.wrap",
            "repro.sim.a.raw",
        )

    def test_constant_delay_not_flagged(self):
        findings = findings_for(
            (
                "src/repro/sim/a.py",
                "def proc(env):\n"
                "    yield env.timeout(1.5)\n",
            ),
        )
        assert "FELA101" not in rules_hit(findings)

    def test_outside_sim_packages_not_flagged(self):
        findings = findings_for(
            (
                "src/repro/harness/a.py",
                "import time\n"
                "def proc(env):\n"
                "    yield env.timeout(time.time())\n",
            ),
        )
        assert "FELA101" not in rules_hit(findings)


class TestFELA102:
    def test_set_feeding_scheduler_flagged_as_stateful(self):
        findings = findings_for(
            (
                "src/repro/sim/a.py",
                "def proc(env, xs):\n"
                "    for x in set(xs):\n"
                "        env.schedule(x, 0, 1.0)\n",
            ),
        )
        (finding,) = [f for f in findings if f.rule_id == "FELA102"]
        assert "scheduling-order-sensitive" in finding.message

    def test_order_escape_without_state_flagged_softly(self):
        findings = findings_for(
            (
                "src/repro/obs/a.py",
                "def rows(d):\n"
                "    out = []\n"
                "    for v in d.values():\n"
                "        out.append(v)\n"
                "    return out\n",
            ),
        )
        (finding,) = [f for f in findings if f.rule_id == "FELA102"]
        assert "escapes this loop" in finding.message

    def test_sorted_iteration_not_flagged(self):
        findings = findings_for(
            (
                "src/repro/sim/a.py",
                "def proc(env, xs):\n"
                "    for x in sorted(set(xs)):\n"
                "        env.schedule(x, 0, 1.0)\n",
            ),
        )
        assert "FELA102" not in rules_hit(findings)


class TestFELA103:
    def test_bad_capture_in_jobspec_subclass_flagged(self):
        findings = findings_for(
            (
                "src/repro/exec/a.py",
                "import random\n"
                "class JobSpec:\n"
                "    pass\n"
                "class Probe(JobSpec):\n"
                "    pass\n"
                "def submit():\n"
                "    return Probe(fn=lambda x: x, rng=random.Random())\n",
            ),
        )
        flagged = [f for f in findings if f.rule_id == "FELA103"]
        assert len(flagged) == 2
        assert {"'fn'" in f.message or "'rng'" in f.message
                for f in flagged} == {True}

    def test_non_jobspec_class_not_flagged(self):
        findings = findings_for(
            (
                "src/repro/exec/a.py",
                "class Widget:\n"
                "    pass\n"
                "def build():\n"
                "    return Widget(fn=lambda x: x)\n",
            ),
        )
        assert "FELA103" not in rules_hit(findings)


class TestFELA104:
    def test_plain_value_yield_flagged(self):
        findings = findings_for(
            (
                "src/repro/sim/a.py",
                "def proc(env, n):\n"
                "    yield env.timeout(1.0)\n"
                "    yield n + 1\n",
            ),
        )
        flagged = [f for f in findings if f.rule_id == "FELA104"]
        assert len(flagged) == 1
        assert flagged[0].line == 3

    def test_value_returning_helper_yield_flagged(self):
        findings = findings_for(
            (
                "src/repro/sim/a.py",
                "def helper():\n"
                "    return 42\n"
                "def proc(env):\n"
                "    yield helper()\n",
            ),
        )
        (finding,) = [f for f in findings if f.rule_id == "FELA104"]
        assert "helper" in finding.message

    def test_unknown_helper_yield_not_flagged(self):
        # The rule fires only on certainty: an unresolvable return
        # kind must stay silent.
        findings = findings_for(
            (
                "src/repro/sim/a.py",
                "def helper(thing):\n"
                "    return thing.spin()\n"
                "def proc(env):\n"
                "    yield helper(env)\n",
            ),
        )
        assert "FELA104" not in rules_hit(findings)

    def test_event_subclass_yield_not_flagged(self):
        findings = findings_for(
            (
                "src/repro/sim/a.py",
                "class Event:\n"
                "    pass\n"
                "class Probe(Event):\n"
                "    pass\n"
                "def proc(env):\n"
                "    yield Probe()\n",
            ),
        )
        assert "FELA104" not in rules_hit(findings)


class TestFELA105:
    def test_unreleased_request_flagged(self):
        findings = findings_for(
            (
                "src/repro/sim/a.py",
                "def proc(env, link):\n"
                "    claim = link.request()\n"
                "    yield claim\n",
            ),
        )
        (finding,) = [f for f in findings if f.rule_id == "FELA105"]
        assert "never released" in finding.message

    def test_with_scoped_request_not_flagged(self):
        findings = findings_for(
            (
                "src/repro/sim/a.py",
                "def proc(env, link):\n"
                "    with link.request() as claim:\n"
                "        yield claim\n",
            ),
        )
        assert "FELA105" not in rules_hit(findings)


class TestFindingShape:
    def test_catalog_covers_all_emitted_rules(self):
        assert set(FLOW_RULES) == {
            "FELA101", "FELA102", "FELA103", "FELA104", "FELA105"
        }

    def test_render_includes_trace(self):
        finding = FlowFinding(
            path="a.py", line=1, col=1, rule_id="FELA101",
            message="m", trace=("f", "g"),
        )
        assert finding.render().endswith("[via f -> g]")

    def test_to_dict_round_trips_trace_as_list(self):
        finding = FlowFinding(
            path="a.py", line=1, col=1, rule_id="FELA101",
            message="m", trace=("f",),
        )
        assert finding.to_dict()["trace"] == ["f"]
