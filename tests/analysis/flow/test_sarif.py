"""SARIF document construction and the structural validator."""

import json

from repro.analysis.flow.rules import FLOW_RULES, FlowFinding
from repro.analysis.flow.sarif import (
    SARIF_VERSION,
    make_sarif,
    render_sarif,
    validate_sarif,
)
from repro.analysis.linter import run_lint


def finding(**overrides):
    base = dict(
        path="src/repro/sim/a.py", line=3, col=5,
        rule_id="FELA101", message="wall-clock reaches sim time",
        trace=("f", "g"),
    )
    base.update(overrides)
    return FlowFinding(**base)


class TestDocumentShape:
    def test_own_output_validates(self):
        document = make_sarif([finding()], FLOW_RULES)
        assert validate_sarif(document) == []
        assert document["version"] == SARIF_VERSION

    def test_result_carries_location_and_trace(self):
        document = make_sarif([finding()], FLOW_RULES)
        (result,) = document["runs"][0]["results"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == (
            "src/repro/sim/a.py"
        )
        assert location["region"]["startLine"] == 3
        assert "[via f -> g]" in result["message"]["text"]

    def test_rules_metadata_covers_every_result(self):
        document = make_sarif(
            [finding(), finding(rule_id="FELA104", line=9)],
            FLOW_RULES,
        )
        declared = {
            rule["id"]
            for rule in document["runs"][0]["tool"]["driver"]["rules"]
        }
        assert {"FELA101", "FELA104"} <= declared

    def test_baselined_findings_get_external_suppression(self):
        accepted = finding(rule_id="FELA102", line=7)
        document = make_sarif(
            [finding(), accepted], FLOW_RULES, baselined=[accepted]
        )
        by_rule = {
            result["ruleId"]: result
            for result in document["runs"][0]["results"]
        }
        assert by_rule["FELA102"]["baselineState"] == "unchanged"
        assert by_rule["FELA102"]["suppressions"][0]["kind"] == (
            "external"
        )
        assert by_rule["FELA101"]["baselineState"] == "new"

    def test_render_is_stable_json(self):
        text = render_sarif([finding()], FLOW_RULES)
        assert json.loads(text) == json.loads(
            render_sarif([finding()], FLOW_RULES)
        )


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_sarif([]) != []

    def test_rejects_wrong_version(self):
        document = make_sarif([], FLOW_RULES)
        document["version"] = "1.0.0"
        assert any("version" in e for e in validate_sarif(document))

    def test_rejects_result_without_location(self):
        document = make_sarif([finding()], FLOW_RULES)
        document["runs"][0]["results"][0]["locations"] = []
        assert any(
            "locations" in e for e in validate_sarif(document)
        )

    def test_rejects_undeclared_rule_id(self):
        document = make_sarif([finding()], FLOW_RULES)
        document["runs"][0]["results"][0]["ruleId"] = "FELA999"
        assert any("FELA999" in e for e in validate_sarif(document))

    def test_rejects_bad_suppression_kind(self):
        accepted = finding()
        document = make_sarif(
            [accepted], FLOW_RULES, baselined=[accepted]
        )
        document["runs"][0]["results"][0]["suppressions"][0][
            "kind"
        ] = "whatever"
        assert any(
            "suppression" in e for e in validate_sarif(document)
        )


class TestClassicLintSarif:
    def test_lint_emits_valid_sarif(self, tmp_path):
        sim = tmp_path / "src" / "repro" / "sim"
        sim.mkdir(parents=True)
        (sim / "bad.py").write_text(
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        )
        report, code = run_lint(
            [str(tmp_path)], output_format="sarif"
        )
        assert code == 1
        document = json.loads(report)
        assert validate_sarif(document) == []
        assert document["runs"][0]["results"][0]["ruleId"] == (
            "FELA001"
        )
