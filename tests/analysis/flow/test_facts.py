"""Per-file fact extraction: taint atoms, value kinds, loop/yield facts."""

import pytest

from repro.analysis.flow.facts import (
    KIND_ENV,
    KIND_RNG,
    KIND_WALL,
    ModuleFacts,
    extract_module_facts,
    module_name,
)


def facts_of(source, path="src/repro/sim/mod.py"):
    return extract_module_facts(source, path)


def fn(module, name):
    for function in module.functions:
        if function.qualname.endswith("." + name):
            return function
    raise AssertionError(
        f"{name} not in {[f.qualname for f in module.functions]}"
    )


class TestModuleName:
    def test_derives_from_last_repro_component(self):
        assert (
            module_name("tests/x/fixtures/src/repro/sim/a.py")
            == "repro.sim.a"
        )

    def test_init_maps_to_package(self):
        assert module_name("src/repro/sim/__init__.py") == "repro.sim"

    def test_non_repro_path_uses_stem(self):
        assert module_name("/tmp/scratch.py") == "scratch"


class TestTaintAtoms:
    def test_wall_clock_read_taints_return(self):
        module = facts_of(
            "import time\n"
            "def f():\n"
            "    return time.time()\n"
        )
        assert KIND_WALL in fn(module, "f").return_atoms

    def test_environ_read_taints_return(self):
        module = facts_of(
            "import os\n"
            "def f():\n"
            "    return os.environ['SEED']\n"
        )
        assert KIND_ENV in fn(module, "f").return_atoms

    def test_unseeded_rng_taints_return(self):
        module = facts_of(
            "import random\n"
            "def f():\n"
            "    return random.random()\n"
        )
        assert KIND_RNG in fn(module, "f").return_atoms

    def test_seeded_rng_is_clean(self):
        module = facts_of(
            "import random\n"
            "def f(seed):\n"
            "    return random.Random(seed)\n"
        )
        assert KIND_RNG not in fn(module, "f").return_atoms

    def test_taint_flows_through_locals_into_sink(self):
        module = facts_of(
            "import time\n"
            "def f(env):\n"
            "    d = time.time()\n"
            "    e = d * 2\n"
            "    yield env.timeout(e)\n"
        )
        (sink,) = fn(module, "f").sinks
        assert sink.sink == "sim-time"
        assert KIND_WALL in sink.atoms

    def test_call_atoms_stay_symbolic(self):
        module = facts_of(
            "def helper():\n"
            "    return 1.0\n"
            "def f(env):\n"
            "    yield env.timeout(helper())\n"
        )
        (sink,) = fn(module, "f").sinks
        assert "call:repro.sim.mod.helper" in sink.atoms


class TestLoopFacts:
    def test_set_iteration_recorded(self):
        module = facts_of(
            "def f(env, xs):\n"
            "    for x in set(xs):\n"
            "        env.schedule(x, 0, 1.0)\n"
        )
        (loop,) = fn(module, "f").loops
        assert loop.kind == "set"
        assert loop.body_sink

    def test_dict_view_through_local_recorded(self):
        module = facts_of(
            "def f(d):\n"
            "    out = []\n"
            "    for v in d.values():\n"
            "        out.append(v)\n"
            "    return out\n"
        )
        (loop,) = fn(module, "f").loops
        assert loop.kind == "dict-view"
        assert not loop.body_sink

    def test_sorted_iteration_not_recorded(self):
        module = facts_of(
            "def f(env, xs):\n"
            "    for x in sorted(set(xs)):\n"
            "        env.schedule(x, 0, 1.0)\n"
        )
        assert fn(module, "f").loops == []

    def test_set_comprehension_not_recorded(self):
        # The comprehension's own result is unordered, so its source
        # order cannot escape.
        module = facts_of(
            "def f(xs):\n"
            "    return {x + 1 for x in set(xs)}\n"
        )
        assert fn(module, "f").loops == []

    def test_list_comprehension_over_set_recorded(self):
        module = facts_of(
            "def f(xs):\n"
            "    return [x for x in set(xs)]\n"
        )
        (loop,) = fn(module, "f").loops
        assert loop.kind == "set"


class TestYieldAndResourceFacts:
    def test_yields_classified_by_kind(self):
        module = facts_of(
            "def f(env, n):\n"
            "    yield env.timeout(1.0)\n"
            "    yield n + 1\n"
        )
        kinds = [y.kind for y in fn(module, "f").yields_]
        assert kinds == ["event", "value"]

    def test_unreleased_acquire_recorded(self):
        module = facts_of(
            "def f(env, link):\n"
            "    claim = link.request()\n"
            "    yield claim\n"
        )
        (acquire,) = fn(module, "f").acquires
        assert not acquire.released

    def test_with_request_counts_as_released(self):
        module = facts_of(
            "def f(env, link):\n"
            "    with link.request() as claim:\n"
            "        yield claim\n"
        )
        assert fn(module, "f").acquires == []

    def test_cancel_counts_as_released(self):
        module = facts_of(
            "def f(env, link):\n"
            "    claim = link.request()\n"
            "    yield claim\n"
            "    claim.cancel()\n"
        )
        (acquire,) = fn(module, "f").acquires
        assert acquire.released


class TestCtorFacts:
    def test_lambda_and_unseeded_rng_arguments_flagged(self):
        module = facts_of(
            "import random\n"
            "class Job:\n"
            "    pass\n"
            "def f():\n"
            "    return Job(fn=lambda x: x, rng=random.Random())\n",
            path="src/repro/exec/mod.py",
        )
        (ctor,) = fn(module, "f").ctors
        reasons = {bad.param: bad.reason for bad in ctor.bad}
        assert "lambda" in reasons["fn"]
        assert "unseeded" in reasons["rng"]

    def test_plain_arguments_record_no_ctor_fact(self):
        module = facts_of(
            "class Job:\n"
            "    pass\n"
            "def f(seed):\n"
            "    return Job(seed=seed, name='probe')\n",
            path="src/repro/exec/mod.py",
        )
        assert fn(module, "f").ctors == []


class TestRoundTrip:
    def test_facts_survive_dict_round_trip(self):
        module = facts_of(
            "import time\n"
            "class C:\n"
            "    def m(self, env):\n"
            "        claim = env.request()\n"
            "        for x in set(env.ids):\n"
            "            env.schedule(x, 0, time.time())\n"
            "        yield claim\n"
        )
        clone = ModuleFacts.from_dict(module.to_dict())
        assert clone.to_dict() == module.to_dict()
        assert [f.qualname for f in clone.functions] == [
            f.qualname for f in module.functions
        ]

    def test_syntax_error_propagates(self):
        with pytest.raises(SyntaxError):
            facts_of("def broken(:\n")
