"""Whole-program model: resolution, taint fixed point, event kinds."""

from repro.analysis.flow.callgraph import (
    CallGraph,
    EVENT_ROOTS,
    Program,
    event_kinds,
    resolve_atoms,
    return_taint,
    state_closure,
)
from repro.analysis.flow.facts import KIND_WALL, extract_module_facts


def program_of(*files):
    return Program(
        extract_module_facts(source, path) for path, source in files
    )


class TestResolution:
    def test_cross_module_call_resolves(self):
        program = program_of(
            (
                "src/repro/sim/a.py",
                "from repro.sim.b import helper\n"
                "def f():\n"
                "    return helper()\n",
            ),
            (
                "src/repro/sim/b.py",
                "def helper():\n"
                "    return 1\n",
            ),
        )
        graph = CallGraph(program)
        assert graph.successors["repro.sim.a.f"] == {
            "repro.sim.b.helper"
        }

    def test_method_resolves_through_base_class(self):
        program = program_of(
            (
                "src/repro/sim/a.py",
                "class Base:\n"
                "    def step(self):\n"
                "        return 1\n"
                "class Child(Base):\n"
                "    pass\n",
            ),
        )
        resolved = program.resolve_function("repro.sim.a.Child.step")
        assert resolved is not None
        assert resolved.qualname == "repro.sim.a.Base.step"

    def test_derives_from_follows_transitive_bases(self):
        program = program_of(
            (
                "src/repro/sim/a.py",
                "class Event:\n"
                "    pass\n"
                "class Timeout(Event):\n"
                "    pass\n"
                "class Retry(Timeout):\n"
                "    pass\n"
                "class Other:\n"
                "    pass\n",
            ),
        )
        assert program.derives_from("repro.sim.a.Retry", EVENT_ROOTS)
        assert not program.derives_from(
            "repro.sim.a.Other", EVENT_ROOTS
        )


class TestReturnTaint:
    def test_taint_propagates_with_provenance_chain(self):
        program = program_of(
            (
                "src/repro/sim/a.py",
                "import time\n"
                "def raw():\n"
                "    return time.time()\n"
                "def wrap():\n"
                "    return raw()\n"
                "def outer():\n"
                "    return wrap()\n",
            ),
        )
        taint = return_taint(program)
        assert taint["repro.sim.a.outer"][KIND_WALL] == (
            "repro.sim.a.outer",
            "repro.sim.a.wrap",
            "repro.sim.a.raw",
        )

    def test_recursive_cycle_terminates(self):
        program = program_of(
            (
                "src/repro/sim/a.py",
                "import time\n"
                "def ping(n):\n"
                "    return pong(n) if n else time.time()\n"
                "def pong(n):\n"
                "    return ping(n - 1)\n",
            ),
        )
        taint = return_taint(program)
        assert KIND_WALL in taint["repro.sim.a.ping"]
        assert KIND_WALL in taint["repro.sim.a.pong"]

    def test_resolve_atoms_mixes_concrete_and_symbolic(self):
        program = program_of(
            (
                "src/repro/sim/a.py",
                "import time\n"
                "def raw():\n"
                "    return time.time()\n",
            ),
        )
        taint = return_taint(program)
        kinds = resolve_atoms(
            ["host-env", "call:repro.sim.a.raw"], program, taint
        )
        assert set(kinds) == {"host-env", KIND_WALL}


class TestEventKinds:
    def test_tri_state_classification(self):
        program = program_of(
            (
                "src/repro/sim/a.py",
                "def pure_event(env):\n"
                "    return env.timeout(1.0)\n"
                "def pure_value():\n"
                "    return 42\n"
                "def mixed(env, flag):\n"
                "    if flag:\n"
                "        return env.timeout(1.0)\n"
                "    return 42\n"
                "def chained(env):\n"
                "    return pure_event(env)\n"
                "def opaque(thing):\n"
                "    return thing.spin()\n",
            ),
        )
        kinds = event_kinds(program)
        assert kinds["repro.sim.a.pure_event"] == "event"
        assert kinds["repro.sim.a.pure_value"] == "value"
        assert kinds["repro.sim.a.mixed"] == "mixed"
        assert kinds["repro.sim.a.chained"] == "event"
        assert kinds["repro.sim.a.opaque"] == "unknown"


class TestStateClosure:
    def test_closure_includes_transitive_callers(self):
        program = program_of(
            (
                "src/repro/sim/a.py",
                "def mutate(env, ev):\n"
                "    env.schedule(ev, 0, 1.0)\n"
                "def middle(env, ev):\n"
                "    mutate(env, ev)\n"
                "def bystander():\n"
                "    return 7\n",
            ),
        )
        closure = state_closure(program, CallGraph(program))
        assert "repro.sim.a.mutate" in closure
        assert "repro.sim.a.middle" in closure
        assert "repro.sim.a.bystander" not in closure
