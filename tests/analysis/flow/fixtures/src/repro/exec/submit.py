"""Fixture: a JobSpec construction capturing unpicklable state.

``ProbeJob`` inherits from a class named ``JobSpec``, so FELA103 must
flag the lambda transform and the unseeded RNG handed to its
constructor — both would break byte-identical parallel fan-out.
"""

from __future__ import annotations

import random


class JobSpec:
    def __init__(self, **kwargs):
        self.kwargs = kwargs


class ProbeJob(JobSpec):
    pass


def submit_probe(queue):
    job = ProbeJob(
        transform=lambda sample: sample * 2,
        rng=random.Random(),  # repro: noqa-FELA002
    )
    queue.append(job)
    return job
