"""Fixture: sim processes with seeded determinism bugs.

* ``warmup`` feeds the laundered wall-clock value from
  :mod:`repro.sim.clocks` into ``env.timeout`` (FELA101).
* ``drain_tokens`` iterates an unordered ``set`` of token holders and
  schedules work in that order (FELA102).
* ``peek_progress`` yields a plain number from a sim process (FELA104).
* ``hold_link`` requests a resource and never releases it (FELA105).
"""

from __future__ import annotations

from repro.sim.clocks import jitter_seconds


def warmup(env):
    delay = jitter_seconds()
    yield env.timeout(delay)


def drain_tokens(env, holders, tokens):
    pending = set(holders)
    for wid in pending:
        env.schedule(tokens[wid], 0, 0.5)
    yield env.timeout(1.0)


def peek_progress(env, counter):
    yield env.timeout(1.0)
    yield counter + 1


def hold_link(env, link):
    claim = link.request()
    yield claim
    yield env.timeout(2.0)
