"""Fixture: determinism-correct sim code — must yield zero findings.

Exercises the patterns the flow rules must NOT flag: constant delays,
sorted iteration over a set, a set comprehension (whose result is
unordered anyway), a ``with``-scoped resource request, and a helper
that genuinely returns an Event.
"""

from __future__ import annotations


def backoff_seconds(attempt: int) -> float:
    return min(2.0**attempt, 30.0)


def make_pause(env, seconds):
    return env.timeout(seconds)


def settle(env, holders, tokens):
    for wid in sorted(set(holders)):
        env.schedule(tokens[wid], 0, 0.5)
    alive = {wid for wid in holders if wid >= 0}
    yield env.timeout(backoff_seconds(len(alive)))


def borrow_link(env, link):
    with link.request() as claim:
        yield claim
        yield make_pause(env, 1.0)


def release_by_hand(env, link):
    claim = link.request()
    yield claim
    yield env.timeout(1.0)
    claim.cancel()
