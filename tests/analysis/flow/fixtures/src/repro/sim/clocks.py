"""Fixture: a wall-clock read laundered through two helpers.

Neither helper is itself a sim process, so the syntactic FELA001 rule
(scoped to sim call sites) never connects the dots; only the
interprocedural FELA101 taint walk can.
"""

from __future__ import annotations

import time


def _raw_clock() -> float:
    return time.time()  # repro: noqa-FELA001


def jitter_seconds() -> float:
    """Pseudo-jitter derived from the host clock (a determinism bug)."""
    return _raw_clock() % 1.0
