"""The analyze_paths driver: fixtures, caching, noqa, parse errors."""

import pathlib

from repro.analysis.flow import analyze_paths
from repro.exec.cache import ResultCache

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def test_fixture_tree_yields_exactly_the_seeded_bugs():
    report = analyze_paths([FIXTURES])
    by_rule = {}
    for finding in report.findings:
        by_rule.setdefault(finding.rule_id, []).append(finding)
    assert set(by_rule) == {
        "FELA101", "FELA102", "FELA103", "FELA104", "FELA105"
    }
    (laundered,) = by_rule["FELA101"]
    assert laundered.path.endswith("sim/workload.py")
    assert laundered.trace == (
        "repro.sim.clocks.jitter_seconds",
        "repro.sim.clocks._raw_clock",
    )
    (unordered,) = by_rule["FELA102"]
    assert "unordered set" in unordered.message
    assert len(by_rule["FELA103"]) == 2
    assert all(
        f.path.endswith("exec/submit.py") for f in by_rule["FELA103"]
    )


def test_clean_fixture_module_contributes_no_findings():
    report = analyze_paths([FIXTURES])
    assert not any(
        finding.path.endswith("clean.py")
        for finding in report.findings
    )


def test_findings_are_sorted_and_unique():
    report = analyze_paths([FIXTURES])
    assert report.findings == sorted(set(report.findings))


class TestIncrementalCache:
    def _tree(self, tmp_path):
        sim = tmp_path / "src" / "repro" / "sim"
        sim.mkdir(parents=True)
        (sim / "a.py").write_text(
            "def proc(env, n):\n    yield n + 1\n"
        )
        (sim / "b.py").write_text(
            "def make(env):\n    return env.timeout(1.0)\n"
        )
        return tmp_path

    def test_warm_run_reanalyzes_only_changed_files(self, tmp_path):
        tree = self._tree(tmp_path)
        cache = ResultCache(tmp_path / "cache")
        cold = analyze_paths([tree], cache=cache)
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)

        warm = analyze_paths([tree], cache=cache)
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        assert warm.findings == cold.findings

        (tree / "src" / "repro" / "sim" / "a.py").write_text(
            "def proc(env, n):\n    yield env.timeout(1.0)\n"
        )
        touched = analyze_paths([tree], cache=cache)
        assert (touched.cache_hits, touched.cache_misses) == (1, 1)
        assert touched.findings == []

    def test_cacheless_run_matches_cached_run(self, tmp_path):
        tree = self._tree(tmp_path)
        cache = ResultCache(tmp_path / "cache")
        assert (
            analyze_paths([tree], cache=cache).findings
            == analyze_paths([tree]).findings
        )


class TestSuppressionAndErrors:
    def test_noqa_on_finding_line_suppresses_flow_rule(self, tmp_path):
        sim = tmp_path / "src" / "repro" / "sim"
        sim.mkdir(parents=True)
        (sim / "a.py").write_text(
            "def proc(env, n):\n"
            "    yield n + 1  # repro: noqa-FELA104\n"
        )
        assert analyze_paths([tmp_path]).findings == []

    def test_noqa_for_other_rule_does_not_suppress(self, tmp_path):
        sim = tmp_path / "src" / "repro" / "sim"
        sim.mkdir(parents=True)
        (sim / "a.py").write_text(
            "def proc(env, n):\n"
            "    yield n + 1  # repro: noqa-FELA001\n"
        )
        (finding,) = analyze_paths([tmp_path]).findings
        assert finding.rule_id == "FELA104"

    def test_unparsable_file_reported_as_fela000(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        (finding,) = analyze_paths([tmp_path]).findings
        assert finding.rule_id == "FELA000"
        assert "cannot parse" in finding.message
