"""The codebase must satisfy its own flow rules, modulo the baseline.

The syntactic twin lives in ``tests/analysis/test_self_lint.py``.  Here
the whole-program analyzer sweeps ``src`` and every finding must be
covered by the checked-in ``analysis-baseline.json``: introducing a new
interprocedural determinism hazard anywhere in the package fails this
test (and the ``flow-analysis`` CI job) until it is fixed or
consciously accepted into the baseline.
"""

import pathlib

from repro.analysis.flow import analyze_paths, load_baseline, partition

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]


def test_src_has_no_findings_outside_the_baseline():
    report = analyze_paths([REPO_ROOT / "src"])
    baseline = load_baseline(REPO_ROOT / "analysis-baseline.json")
    new, _ = partition(report.findings, report.sources, baseline)
    assert new == [], "\n".join(f.render() for f in new)


def test_baseline_has_no_stale_entries():
    report = analyze_paths([REPO_ROOT / "src"])
    baseline = load_baseline(REPO_ROOT / "analysis-baseline.json")
    _, matched = partition(report.findings, report.sources, baseline)
    stale = len(baseline) - len(matched)
    assert stale == 0, (
        f"{stale} baseline entries no longer match any finding; "
        "regenerate with: python -m repro analyze --flow src "
        "--write-baseline"
    )


def test_fixture_bugs_are_not_masked_by_the_baseline():
    fixtures = pathlib.Path(__file__).parent / "fixtures"
    report = analyze_paths([fixtures])
    baseline = load_baseline(REPO_ROOT / "analysis-baseline.json")
    new, _ = partition(report.findings, report.sources, baseline)
    assert {f.rule_id for f in new} == {
        "FELA101", "FELA102", "FELA103", "FELA104", "FELA105"
    }
