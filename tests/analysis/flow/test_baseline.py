"""Baseline mechanics and the suppressed-vs-baselined distinction."""

import json
import pathlib

import pytest

from repro.analysis.flow import analyze_paths
from repro.analysis.flow.baseline import (
    compute_fingerprints,
    load_baseline,
    partition,
    write_baseline,
)
from repro.analysis.flow.cli import run_flow
from repro.analysis.flow.sarif import validate_sarif

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def _sim_tree(tmp_path, body):
    sim = tmp_path / "src" / "repro" / "sim"
    sim.mkdir(parents=True)
    (sim / "a.py").write_text(body)
    return tmp_path


class TestFingerprints:
    def test_stable_under_line_shifts(self, tmp_path):
        tree = _sim_tree(
            tmp_path, "def proc(env, n):\n    yield n + 1\n"
        )
        report = analyze_paths([tree])
        ((_, before),) = compute_fingerprints(
            report.findings, report.sources
        )
        # Push the finding three lines down without touching its text:
        # the fingerprint must not move.
        (tree / "src" / "repro" / "sim" / "a.py").write_text(
            "# a comment pushing everything down\n\n\n"
            "def proc(env, n):\n    yield n + 1\n"
        )
        shifted = analyze_paths([tree])
        ((after_finding, after),) = compute_fingerprints(
            shifted.findings, shifted.sources
        )
        assert after_finding.line == 5
        assert after == before

    def test_identical_lines_get_distinct_occurrences(self, tmp_path):
        tree = _sim_tree(
            tmp_path,
            "def proc(env, n):\n"
            "    yield n + 1\n"
            "def proc2(env, n):\n"
            "    yield n + 1\n",
        )
        report = analyze_paths([tree])
        fingerprints = [
            fp for _, fp in
            compute_fingerprints(report.findings, report.sources)
        ]
        assert len(fingerprints) == 2
        assert len(set(fingerprints)) == 2


class TestRoundTrip:
    def test_write_then_partition_accepts_everything(self, tmp_path):
        report = analyze_paths([FIXTURES])
        baseline_file = tmp_path / "baseline.json"
        count = write_baseline(
            baseline_file, report.findings, report.sources
        )
        assert count == len(report.findings) > 0
        accepted = load_baseline(baseline_file)
        new, baselined = partition(
            report.findings, report.sources, accepted
        )
        assert new == []
        assert sorted(baselined) == sorted(report.findings)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_corrupt_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError):
            load_baseline(bad)
        bad.write_text('{"schema": 99, "entries": {}}')
        with pytest.raises(ValueError):
            load_baseline(bad)


class TestExitCodes:
    def test_fail_on_new_without_baseline_exits_one(self, tmp_path):
        _, code = run_flow(
            [str(FIXTURES)],
            baseline_path=str(tmp_path / "baseline.json"),
            fail_on_new=True,
        )
        assert code == 1

    def test_fail_on_new_with_full_baseline_exits_zero(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        text, code = run_flow(
            [str(FIXTURES)],
            baseline_path=str(baseline),
            write_baseline_file=True,
        )
        assert code == 0
        assert "wrote" in text
        _, code = run_flow(
            [str(FIXTURES)],
            baseline_path=str(baseline),
            fail_on_new=True,
        )
        assert code == 0

    def test_reporting_mode_exits_zero_despite_findings(self, tmp_path):
        _, code = run_flow(
            [str(FIXTURES)],
            baseline_path=str(tmp_path / "baseline.json"),
        )
        assert code == 0

    def test_usage_error_exits_two_in_every_format(self, tmp_path):
        for output_format in ("text", "json", "sarif"):
            text, code = run_flow(
                [str(tmp_path / "missing")],
                output_format=output_format,
                baseline_path=str(tmp_path / "baseline.json"),
            )
            assert code == 2
            if output_format == "json":
                assert "error" in json.loads(text)
            elif output_format == "sarif":
                assert validate_sarif(json.loads(text)) == []
            else:
                assert text.startswith("error:")


class TestSuppressedIsNotBaselined:
    def test_noqa_finding_never_reaches_the_baseline(self, tmp_path):
        tree = _sim_tree(
            tmp_path,
            "def proc(env, n):\n"
            "    yield n + 1  # repro: noqa-FELA104\n"
            "def proc2(env, n):\n"
            "    yield n + 1\n",
        )
        baseline = tmp_path / "baseline.json"
        text, code = run_flow(
            [str(tree)],
            baseline_path=str(baseline),
            write_baseline_file=True,
        )
        assert code == 0
        entries = load_baseline(baseline)
        # Only the unsuppressed proc2 finding is accepted; the noqa'd
        # one was filtered before baselining ever saw it.
        assert len(entries) == 1
        (entry,) = entries.values()
        assert entry["rule"] == "FELA104"
        assert "proc2" not in entry["line_text"]

    def test_baselined_finding_is_still_reported(self, tmp_path):
        tree = _sim_tree(
            tmp_path, "def proc(env, n):\n    yield n + 1\n"
        )
        baseline = tmp_path / "baseline.json"
        run_flow(
            [str(tree)],
            baseline_path=str(baseline),
            write_baseline_file=True,
        )
        text, code = run_flow(
            [str(tree)],
            output_format="json",
            baseline_path=str(baseline),
            fail_on_new=True,
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["count"] == 1
        assert payload["baselined"] == 1
        assert payload["findings"][0]["baselined"] is True

    def test_markers_round_trip_through_json_and_sarif(self, tmp_path):
        tree = _sim_tree(
            tmp_path,
            "def proc(env, n):\n"
            "    yield n + 1\n"
            "def proc2(env, n):\n"
            "    yield n + 1  # repro: noqa-FELA104\n"
            "def proc3(env, link):\n"
            "    claim = link.request()\n"
            "    yield claim\n",
        )
        baseline = tmp_path / "baseline.json"
        # Baseline only the FELA104 finding, then re-introduce a new
        # FELA105 finding: the report must distinguish all three fates.
        report = analyze_paths([tree])
        fela104 = [
            f for f in report.findings if f.rule_id == "FELA104"
        ]
        write_baseline(baseline, fela104, report.sources)

        json_text, json_code = run_flow(
            [str(tree)],
            output_format="json",
            baseline_path=str(baseline),
            fail_on_new=True,
        )
        payload = json.loads(json_text)
        assert json_code == 1  # the FELA105 finding is new
        states = {
            entry["rule_id"]: entry["baselined"]
            for entry in payload["findings"]
        }
        assert states == {"FELA104": True, "FELA105": False}

        sarif_text, _ = run_flow(
            [str(tree)],
            output_format="sarif",
            baseline_path=str(baseline),
        )
        document = json.loads(sarif_text)
        assert validate_sarif(document) == []
        by_rule = {
            result["ruleId"]: result
            for result in document["runs"][0]["results"]
        }
        assert by_rule["FELA104"]["baselineState"] == "unchanged"
        assert by_rule["FELA104"]["suppressions"][0]["kind"] == (
            "external"
        )
        assert by_rule["FELA105"]["baselineState"] == "new"
        assert "suppressions" not in by_rule["FELA105"]
        # The noqa'd proc2 finding appears nowhere at all.
        assert len(by_rule) == 2
