"""Per-rule unit tests: positive, negative, and noqa cases."""

import textwrap

import pytest

from repro.analysis import all_rules, get_rule, lint_source

SIM_PATH = "src/repro/sim/module.py"
CORE_PATH = "src/repro/core/module.py"
METRICS_PATH = "src/repro/metrics/module.py"
OTHER_PATH = "src/repro/harness/module.py"


def lint(source, path=SIM_PATH, select=None):
    rules = None if select is None else [get_rule(select)]
    return lint_source(textwrap.dedent(source), path, rules)


def rule_ids(violations):
    return [violation.rule_id for violation in violations]


class TestRegistry:
    def test_all_six_rules_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == [
            "FELA001", "FELA002", "FELA003", "FELA004", "FELA005",
            "FELA006",
        ]

    def test_get_rule_unknown_raises(self):
        with pytest.raises(KeyError):
            get_rule("FELA999")


class TestWallClock:
    def test_flags_time_time_in_sim(self):
        violations = lint(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert rule_ids(violations) == ["FELA001"]
        assert "time.time" in violations[0].message

    def test_flags_from_import_and_alias(self):
        violations = lint(
            """
            from time import perf_counter
            import time as clock

            def stamp():
                return perf_counter() + clock.monotonic()
            """,
            path=CORE_PATH,
        )
        assert rule_ids(violations) == ["FELA001", "FELA001"]

    def test_flags_datetime_now(self):
        violations = lint(
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """
        )
        assert rule_ids(violations) == ["FELA001"]

    def test_ignores_env_now_and_local_names(self):
        violations = lint(
            """
            def advance(env, self):
                now = env.now
                return self.time() + now
            """
        )
        assert violations == []

    def test_not_scoped_outside_sim_core(self):
        violations = lint(
            """
            import time

            def stamp():
                return time.time()
            """,
            path=OTHER_PATH,
            select="FELA001",
        )
        assert violations == []

    def test_noqa_suppresses(self):
        violations = lint(
            """
            import time

            def stamp():
                return time.time()  # repro: noqa-FELA001
            """
        )
        assert violations == []


class TestUnseededRandom:
    def test_flags_module_level_random(self):
        violations = lint(
            """
            import random

            def jitter():
                return random.random() + random.randint(0, 4)
            """,
            path=OTHER_PATH,
        )
        assert rule_ids(violations) == ["FELA002", "FELA002"]

    def test_flags_legacy_numpy_api(self):
        violations = lint(
            """
            import numpy as np

            def noise():
                return np.random.rand(3)
            """,
            path=OTHER_PATH,
        )
        assert rule_ids(violations) == ["FELA002"]
        assert "default_rng" in violations[0].message

    def test_allows_seeded_generators(self):
        violations = lint(
            """
            import random
            import numpy as np

            def seeded(seed):
                rng = random.Random(seed)
                gen = np.random.default_rng(seed)
                return rng.random(), gen.normal()
            """,
            path=OTHER_PATH,
        )
        assert violations == []

    def test_blanket_noqa_suppresses(self):
        violations = lint(
            """
            import random

            def jitter():
                return random.random()  # repro: noqa
            """,
            path=OTHER_PATH,
        )
        assert violations == []


class TestSimProtocol:
    def test_flags_literal_yield(self):
        violations = lint(
            """
            def proc(env):
                yield 5
            """
        )
        assert rule_ids(violations) == ["FELA003"]

    def test_flags_bare_yield_and_container(self):
        violations = lint(
            """
            def proc(env):
                yield
                yield [env.timeout(1)]
            """
        )
        assert rule_ids(violations) == ["FELA003", "FELA003"]

    def test_accepts_event_yields(self):
        violations = lint(
            """
            def proc(env, events):
                yield env.timeout(1)
                yield env.all_of(events)
                token = yield from request(env)
                return token
            """
        )
        assert violations == []

    def test_nested_function_yields_attributed_correctly(self):
        violations = lint(
            """
            def outer(env):
                def helper():
                    yield 1
                yield env.timeout(1)
            """
        )
        # The literal yield belongs to ``helper``, still flagged once.
        assert rule_ids(violations) == ["FELA003"]

    def test_not_scoped_to_metrics(self):
        violations = lint(
            """
            def rows():
                yield "header"
            """,
            path=METRICS_PATH,
            select="FELA003",
        )
        assert violations == []


class TestMutableDefault:
    def test_flags_display_defaults(self):
        violations = lint(
            """
            def f(a, items=[], mapping={}, tags=set()):
                return a
            """,
            path=OTHER_PATH,
        )
        assert rule_ids(violations) == ["FELA004"] * 3

    def test_flags_kwonly_and_lambda(self):
        violations = lint(
            """
            def f(*, acc=list()):
                g = lambda xs=[]: xs
                return g, acc
            """,
            path=OTHER_PATH,
        )
        assert rule_ids(violations) == ["FELA004", "FELA004"]

    def test_accepts_immutable_defaults(self):
        violations = lint(
            """
            def f(a=None, b=(), c="x", d=0, e=frozenset()):
                return a, b, c, d, e
            """,
            path=OTHER_PATH,
        )
        assert violations == []

    def test_noqa_suppresses(self):
        violations = lint(
            """
            def f(items=[]):  # repro: noqa-FELA004
                return items
            """,
            path=OTHER_PATH,
        )
        assert violations == []


class TestFloatEquality:
    def test_flags_float_literal_equality(self):
        violations = lint(
            """
            def converged(loss):
                return loss == 0.97
            """,
            path=METRICS_PATH,
        )
        assert rule_ids(violations) == ["FELA005"]

    def test_flags_not_equals(self):
        violations = lint(
            """
            def drifted(x):
                return x != 1.5
            """,
            path="src/repro/tuning/module.py",
        )
        assert rule_ids(violations) == ["FELA005"]

    def test_allows_inf_and_int_comparisons(self):
        violations = lint(
            """
            import math

            def ok(t, n):
                return t == float("inf") or t == math.inf or n == 0
            """,
            path=METRICS_PATH,
        )
        assert violations == []

    def test_allows_ordering_comparisons(self):
        violations = lint(
            """
            def ok(t):
                return t <= 0.5 or t > 1.5
            """,
            path=METRICS_PATH,
        )
        assert violations == []

    def test_not_scoped_to_sim(self):
        violations = lint(
            """
            def check(x):
                return x == 0.5
            """,
            path=SIM_PATH,
            select="FELA005",
        )
        assert violations == []

    def test_noqa_with_rule_list(self):
        violations = lint(
            """
            def check(x, items=[]):  # repro: noqa-FELA004,FELA005
                return x == 0.5  # repro: noqa-FELA005
            """,
            path=METRICS_PATH,
        )
        assert violations == []


class TestProcessPool:
    def test_flags_multiprocessing_import(self):
        violations = lint(
            """
            import multiprocessing
            """,
            path=OTHER_PATH,
            select="FELA006",
        )
        assert rule_ids(violations) == ["FELA006"]
        assert "SweepExecutor" in violations[0].message

    def test_flags_concurrent_futures_from_import(self):
        violations = lint(
            """
            from concurrent.futures import ProcessPoolExecutor
            """,
            path=OTHER_PATH,
            select="FELA006",
        )
        assert rule_ids(violations) == ["FELA006"]

    def test_flags_pool_call_through_alias(self):
        violations = lint(
            """
            import concurrent.futures as cf

            def fan_out():
                return cf.ProcessPoolExecutor(max_workers=4)
            """,
            path=OTHER_PATH,
            select="FELA006",
        )
        # Both the import and the constructor call are flagged.
        assert rule_ids(violations) == ["FELA006", "FELA006"]

    def test_repro_exec_is_exempt(self):
        violations = lint(
            """
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            def pool():
                return ProcessPoolExecutor(
                    mp_context=multiprocessing.get_context("spawn")
                )
            """,
            path="src/repro/exec/executor.py",
            select="FELA006",
        )
        assert violations == []

    def test_files_outside_repro_are_exempt(self):
        violations = lint(
            """
            import multiprocessing
            """,
            path="tests/exec/test_executor.py",
            select="FELA006",
        )
        assert violations == []

    def test_unrelated_imports_pass(self):
        violations = lint(
            """
            import concurrent_lib
            from concurrency import futures
            """,
            path=OTHER_PATH,
            select="FELA006",
        )
        assert violations == []
