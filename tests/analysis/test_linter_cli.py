"""CLI-level tests: exit codes, formats, selection, parse errors."""

import json

import pytest

from repro.analysis import lint_paths, main
from repro.analysis.linter import PARSE_ERROR_RULE, iter_python_files
from repro.cli import main as repro_main

BAD_SIM = """\
import time
import random


def stamp():
    return time.time()


def jitter():
    return random.random()
"""

CLEAN = """\
def add(a, b):
    return a + b
"""


@pytest.fixture()
def tree(tmp_path):
    sim = tmp_path / "src" / "repro" / "sim"
    sim.mkdir(parents=True)
    (sim / "bad.py").write_text(BAD_SIM)
    (tmp_path / "clean.py").write_text(CLEAN)
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        assert main(["lint", str(tree / "clean.py")]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_violations_exit_one_with_rule_ids(self, tree, capsys):
        code = main(["lint", str(tree / "src")])
        out = capsys.readouterr().out
        assert code == 1
        assert "FELA001" in out
        assert "FELA002" in out

    def test_missing_path_exits_two(self, tree, capsys):
        assert main(["lint", str(tree / "nope")]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tree):
        assert main(["lint", str(tree), "--select", "FELA999"]) == 2


class TestFormatsAndSelection:
    def test_json_format_is_machine_readable(self, tree, capsys):
        main(["lint", str(tree / "src"), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 2
        ids = {v["rule_id"] for v in payload["violations"]}
        assert ids == {"FELA001", "FELA002"}

    def test_select_narrows_rules(self, tree, capsys):
        code = main(
            ["lint", str(tree / "src"), "--select", "FELA002"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FELA002" in out
        assert "FELA001" not in out

    def test_rules_subcommand_lists_registry(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("FELA001", "FELA002", "FELA003", "FELA004",
                        "FELA005"):
            assert rule_id in out


class TestParseErrors:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        violations = lint_paths([bad])
        assert [v.rule_id for v in violations] == [PARSE_ERROR_RULE]


class TestFileDiscovery:
    def test_skips_pycache(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text("x = 1\n")
        files = iter_python_files([tmp_path])
        assert [f.name for f in files] == ["real.py"]

    def test_deduplicates_overlapping_paths(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        files = iter_python_files([tmp_path, tmp_path / "a.py"])
        assert len(files) == 1


class TestReproAnalyzeSubcommand:
    def test_analyze_clean_file(self, tree, capsys):
        code = repro_main(["analyze", str(tree / "clean.py")])
        assert code == 0
        assert "no violations" in capsys.readouterr().out

    def test_analyze_finds_violations(self, tree, capsys):
        code = repro_main(["analyze", str(tree / "src")])
        assert code == 1
        assert "FELA001" in capsys.readouterr().out

    def test_analyze_list_rules(self, capsys):
        assert repro_main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "FELA003" in out
        assert "FELA101" in out

    def test_analyze_flow_runs_whole_program_rules(
        self, tree, tmp_path, capsys
    ):
        (tree / "src" / "repro" / "sim" / "proc.py").write_text(
            "def proc(env, n):\n    yield n + 1\n"
        )
        code = repro_main(
            [
                "analyze", "--flow", str(tree / "src"),
                "--no-cache", "--fail-on-new",
                "--baseline", str(tmp_path / "baseline.json"),
            ]
        )
        assert code == 1
        assert "FELA104" in capsys.readouterr().out


class TestFormatConsistency:
    def test_error_is_json_in_json_mode(self, tmp_path, capsys):
        code = main(
            ["lint", str(tmp_path / "nope"), "--format", "json"]
        )
        assert code == 2
        payload = json.loads(capsys.readouterr().err)
        assert "error" in payload
        assert payload["violations"] == []

    def test_error_is_text_in_text_mode(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_text_and_json_agree_on_exit_code(self, tree):
        text_code = main(["lint", str(tree / "src")])
        json_code = main(
            ["lint", str(tree / "src"), "--format", "json"]
        )
        assert text_code == json_code == 1


class TestDeduplication:
    def test_multi_match_node_reported_once(self, tmp_path):
        # A chained float comparison matches FELA005 once per
        # comparator, historically producing identical duplicates.
        target = tmp_path / "src" / "repro" / "sim" / "cmp.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "def close(a, b, c):\n"
            "    return a == b == c\n"
        )
        violations = lint_paths([target])
        assert len(violations) == len(set(violations))
        fela005 = [
            v for v in violations if v.rule_id == "FELA005"
        ]
        spots = [(v.line, v.col) for v in fela005]
        assert len(spots) == len(set(spots))
