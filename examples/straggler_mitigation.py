#!/usr/bin/env python3
"""Straggler mitigation: token-based reactive scheduling at work.

Reproduces the structure of the paper's Figures 9-10 at example scale:
round-robin and probability-based stragglers on VGG19, comparing average
throughput (Equation 3) and per-iteration delay (Equation 4) across all
four runtimes.  Watch two things:

* Fela's PID stays well below DP's and HP's — helpers drain the sleeping
  worker's sub-token-bucket instead of waiting for it;
* MP's PID can undercut even Fela's, for the *bad* reason the paper
  explains: its workers are so idle that sleep overlaps bubble time.

Run:
    python examples/straggler_mitigation.py
"""

from repro import ExperimentRunner, ExperimentSpec, per_iteration_delay
from repro.harness import render_table
from repro.stragglers import ProbabilityStraggler, RoundRobinStraggler

KINDS = ("fela", "dp", "mp", "hp")


def main() -> None:
    runner = ExperimentRunner()
    spec = ExperimentSpec(
        model_name="vgg19", total_batch=256, iterations=8
    )

    baselines = {kind: runner.run(kind, spec) for kind in KINDS}

    print("Round-robin straggler scenario (paper Fig. 9), d = 6 s:")
    injector = RoundRobinStraggler(6.0)
    rows = []
    for kind in KINDS:
        slowed = runner.run(kind, spec, injector)
        rows.append(
            [
                kind.upper(),
                baselines[kind].average_throughput,
                slowed.average_throughput,
                per_iteration_delay(slowed, baselines[kind]),
            ]
        )
    print(
        render_table(
            ["Runtime", "AT base", "AT straggler", "PID (s)"], rows
        )
    )
    print()

    print("Probability straggler scenario (paper Fig. 10), d = 6 s:")
    header = ["Runtime"] + [f"PID @ p={p}" for p in (0.1, 0.3, 0.5)]
    rows = []
    for kind in KINDS:
        cells = [kind.upper()]
        for p in (0.1, 0.3, 0.5):
            slowed = runner.run(kind, spec, ProbabilityStraggler(p, 6.0))
            cells.append(per_iteration_delay(slowed, baselines[kind]))
        rows.append(cells)
    print(render_table(header, rows))
    print()

    work = runner.run(
        "fela", spec, RoundRobinStraggler(6.0)
    ).records[0].work_by_worker
    print(
        "Tokens per worker in iteration 0 (worker 0 was the straggler): "
        f"{list(work)} — helpers absorbed its backlog."
    )


if __name__ == "__main__":
    main()
