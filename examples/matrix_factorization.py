#!/usr/bin/env python3
"""Beyond CNNs: Fela training matrix factorization (paper Section II-B).

"More than deep neural networks, the heterogeneity of parallelism degree
is also very common for other DML tasks, such as matrix factorization
and PageRank."

The block API (:class:`repro.models.BlockSpec`) lets any staged workload
ride the same machinery: profiling, partitioning, the Token Server, the
policies, and the baselines.  For matrix factorization the interesting
axis is *communication*: the factor matrices dwarf the per-rating
compute, so CTD — restricting their synchronization to a small worker
subset — is where the wins come from.

Run:
    python examples/matrix_factorization.py
"""

from repro import Cluster, ClusterSpec, DataParallel, FelaConfig, FelaRuntime
from repro.harness import render_table
from repro.models import build_matrix_factorization
from repro.partition import partition_by_counts


def main() -> None:
    mf = build_matrix_factorization(
        users=1_000_000, items=100_000, rank=128
    )
    print(
        f"Workload: {mf.name}, {mf.param_count / 1e6:.0f}M parameters, "
        f"{mf.forward_flops:.0f} FLOPs per rating — the parameter state "
        "dwarfs the compute."
    )
    partition = partition_by_counts(mf, [1, 1])
    for submodel in partition:
        print(
            f"  {submodel.name}: {submodel.param_count / 1e6:.0f}M params, "
            f"comm-intensive={submodel.communication_intensive}"
        )
    print()

    batch = 65536  # ratings per iteration
    rows = []
    for subset in (8, 2, 1):
        config = FelaConfig(
            partition=partition,
            total_batch=batch,
            num_workers=8,
            weights=(1, 1),
            conditional_subset_size=subset,
            iterations=5,
        )
        result = FelaRuntime(config, Cluster(ClusterSpec(num_nodes=8))).run()
        rows.append(
            [
                f"Fela, subset={subset}",
                result.average_throughput,
                result.stats["network_bytes"] / 1e9,
            ]
        )
    dp = DataParallel(mf, batch, 8, iterations=5).run()
    rows.append(
        ["DP (full sync)", dp.average_throughput, dp.stats["network_bytes"] / 1e9]
    )
    print(
        render_table(
            ["Runtime", "AT (ratings/s)", "network GB (5 iters)"],
            rows,
            title=f"Matrix factorization, {batch} ratings/iteration",
        )
    )
    print(
        "\nShrinking the conditional subset slashes factor-matrix "
        "synchronization,\nwhich is nearly all this workload's cost — "
        "the CTD policy generalizes beyond FC layers."
    )


if __name__ == "__main__":
    main()
