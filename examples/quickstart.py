#!/usr/bin/env python3
"""Quickstart: train VGG19 on a simulated 8-node cluster, four ways.

Reproduces the core comparison of the Fela paper (ICDE 2020) in a few
seconds of wall time: Fela (tuned, all policies) vs the data-parallel,
model-parallel, and hybrid-parallel baselines, on the paper's testbed
configuration (8 nodes, 1 Tesla K40c + 10 Gbps NIC each).

Run:
    python examples/quickstart.py
"""

from repro import ExperimentRunner, ExperimentSpec
from repro.harness import format_speedup, render_table


def main() -> None:
    runner = ExperimentRunner()
    spec = ExperimentSpec(
        model_name="vgg19",
        total_batch=256,
        num_workers=8,
        iterations=10,
    )

    print("Partition used by Fela (the paper's published split):")
    print(runner.partition("vgg19").describe())
    print()

    tuning = runner.tuning(spec)
    print(
        f"Two-phase tuning picked weights={tuning.best_weights}, "
        f"conditional subset={tuning.best_subset_size} "
        f"({tuning.warmup_iterations} warm-up iterations)"
    )
    print()

    results = runner.run_all(spec)
    fela_at = results["fela"].average_throughput
    rows = []
    for kind, result in results.items():
        at = result.average_throughput
        rows.append(
            [
                kind.upper(),
                at,
                result.mean_iteration_time,
                "-" if kind == "fela" else format_speedup(fela_at / at),
            ]
        )
    print(
        render_table(
            ["Runtime", "AT (samples/s)", "s/iteration", "Fela speedup"],
            rows,
            title=f"VGG19, total batch {spec.total_batch}, "
            f"{spec.iterations} iterations",
        )
    )


if __name__ == "__main__":
    main()
