#!/usr/bin/env python3
"""Permanent stragglers: training on a heterogeneous GPU cluster.

The paper injects *transient* stragglers; this example exercises the same
machinery against a *permanently* slow GPU (e.g. an older card in a
mixed cluster).  BSP data parallelism pays the slow GPU's tax every
iteration; Fela's token pull routes work away from it continuously.

Run:
    python examples/heterogeneous_cluster.py
"""

from repro import (
    Cluster,
    ClusterSpec,
    DataParallel,
    FelaConfig,
    FelaRuntime,
    get_model,
    paper_partition,
)
from repro.harness import render_table


def main() -> None:
    model = get_model("vgg19")
    partition = paper_partition(model)
    rows = []
    for slow_factor in (1.0, 0.5, 0.25):
        factors = (1.0,) * 7 + (slow_factor,)
        spec = ClusterSpec(num_nodes=8, gpu_speed_factors=factors)

        config = FelaConfig(
            partition=partition,
            total_batch=512,
            num_workers=8,
            weights=(1, 2, 8),
            conditional_subset_size=2,
            iterations=6,
        )
        fela = FelaRuntime(config, Cluster(spec)).run()
        dp = DataParallel(
            model, 512, 8, iterations=6, cluster=Cluster(spec)
        ).run()
        rows.append(
            [
                f"x{slow_factor}",
                fela.average_throughput,
                dp.average_throughput,
                fela.average_throughput / dp.average_throughput,
                list(fela.records[-1].work_by_worker),
            ]
        )
    print(
        render_table(
            [
                "Node 7 speed",
                "Fela AT",
                "DP AT",
                "Fela/DP",
                "Fela tokens/worker (last iter)",
            ],
            rows,
            title="VGG19, total batch 512: one permanently slow GPU",
        )
    )
    print(
        "\nAs node 7 slows, Fela shifts its tokens onto the other seven "
        "workers;\nDP cannot, and its iteration time tracks the slowest "
        "GPU."
    )


if __name__ == "__main__":
    main()
