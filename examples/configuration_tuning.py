#!/usr/bin/env python3
"""Two-phase runtime configuration tuning (paper Section IV-B, Fig. 6).

Runs the full 13-case search (10 parallelism-degree cases + 3 conditional
subset cases) for several total batch sizes and prints the same
diagnostics the paper plots: normalized per-case times and the best-vs-
worst gaps per phase.

Run:
    python examples/configuration_tuning.py
"""

from repro import ConfigurationTuner, get_model, paper_partition
from repro.harness import render_table


def main() -> None:
    partition = paper_partition(get_model("vgg19"))
    print("Tuning VGG19 on 8 workers; 5 profile iterations per case.\n")

    gap_rows = []
    for batch in (64, 256, 1024):
        tuner = ConfigurationTuner(
            partition, total_batch=batch, num_workers=8,
            profile_iterations=5,
        )
        result = tuner.tune()

        print(f"--- total batch {batch} ---")
        rows = [
            [
                case.index,
                case.phase,
                str(case.weights),
                case.subset_size,
                case.per_iteration_time,
                normalized,
            ]
            for case, normalized in zip(
                result.cases, result.normalized_times()
            )
        ]
        print(
            render_table(
                ["Case", "Phase", "Weights", "Subset", "s/iter", "Norm."],
                rows,
            )
        )
        print(
            f"best: weights={result.best_weights} "
            f"subset={result.best_subset_size} "
            f"({result.warmup_iterations} warm-up iterations)\n"
        )
        gap_rows.append(
            [
                batch,
                f"{result.phase1_gap() * 100:.2f}%",
                f"{result.phase2_gap() * 100:.2f}%",
                f"{result.overall_gap() * 100:.2f}%",
            ]
        )

    print(
        render_table(
            ["Batch", "Phase 1 gap", "Phase 2 gap", "Overall gap"],
            gap_rows,
            title="Best-vs-worst per-iteration-time savings (Fig. 6b). "
            "Paper: 8.51-51.69% / 5.31-41.25% / up to 66.78%.",
        )
    )


if __name__ == "__main__":
    main()
