#!/usr/bin/env python3
"""Visualize token scheduling: a Gantt view of one Fela iteration.

Attaches a :class:`~repro.metrics.TimelineRecorder` to the runtime and
renders per-worker activity, with and without a straggler.  The second
chart makes the paper's elasticity claim visible: worker 0 sleeps, and
the helpers' rows grow by exactly its stolen tokens.

Run:
    python examples/token_timeline.py
"""

from repro import FelaConfig, FelaRuntime, get_model, paper_partition
from repro.metrics import TimelineRecorder
from repro.stragglers import RoundRobinStraggler


def run_and_render(title, straggler=None):
    partition = paper_partition(get_model("vgg19"))
    config = FelaConfig(
        partition=partition,
        total_batch=512,
        num_workers=8,
        weights=(1, 2, 8),
        conditional_subset_size=2,
        iterations=1,
    )
    recorder = TimelineRecorder()
    result = FelaRuntime(
        config, straggler=straggler, recorder=recorder
    ).run()
    print(title)
    print(recorder.render_gantt(width=72))
    print(
        f"iteration time {result.total_time:.2f}s, "
        f"load imbalance (CV of compute time) "
        f"{recorder.load_imbalance():.3f}, "
        f"tokens/worker {list(result.records[0].work_by_worker)}"
    )
    print()


def main() -> None:
    run_and_render("No stragglers:")
    run_and_render(
        "Worker 0 sleeps 4 s at iteration start:",
        straggler=RoundRobinStraggler(4.0),
    )
    print(
        "'#' = token computation, '~' = remote input fetch, '.' = idle.\n"
        "With the straggler, helpers finish their own sub-token-buckets\n"
        "and then drain worker 0's — the reactive mitigation of III-C."
    )


if __name__ == "__main__":
    main()
