#!/usr/bin/env python3
"""The SSP/ASP extension the paper sketches in Section VI.

"Fela can be easily extended to SSP by adding the age attribute to each
token.  By considering the age of token, Fela can distribute the tokens
according to the predefined staleness bound."

This example runs the same tuned VGG19 workload under BSP, SSP with
staleness bounds 1 and 2, and ASP, with and without stragglers.  Relaxed
synchronization lets training run ahead of outstanding gradient
all-reduces, trading iteration quality (not modelled — the paper's reason
to prefer BSP) for speed.

Run:
    python examples/ssp_extension.py
"""

from repro import Cluster, ClusterSpec, ExperimentRunner, ExperimentSpec, FelaRuntime
from repro.core import SyncMode
from repro.harness import render_table
from repro.stragglers import NoStraggler, ProbabilityStraggler

MODES = (
    ("BSP", SyncMode.BSP, 0),
    ("SSP s=1", SyncMode.SSP, 1),
    ("SSP s=2", SyncMode.SSP, 2),
    ("ASP", SyncMode.ASP, 0),
)


def main() -> None:
    runner = ExperimentRunner()
    spec = ExperimentSpec(
        model_name="vgg19", total_batch=1024, iterations=8
    )
    base_config = runner.fela_config(spec)

    rows = []
    for label, mode, staleness in MODES:
        config = base_config.replace(
            sync_mode=mode, staleness=staleness
        )
        plain = FelaRuntime(
            config, Cluster(ClusterSpec(num_nodes=8))
        ).run()
        slowed = FelaRuntime(
            config,
            Cluster(ClusterSpec(num_nodes=8)),
            straggler=ProbabilityStraggler(0.3, 6.0),
        ).run()
        rows.append(
            [
                label,
                plain.average_throughput,
                slowed.average_throughput,
            ]
        )
    print(
        render_table(
            ["Sync mode", "AT (samples/s)", "AT w/ stragglers"],
            rows,
            title="VGG19, total batch 1024, tuned Fela configuration",
        )
    )
    print(
        "\nBSP <= SSP <= ASP in throughput; the gap is what BSP pays for "
        "exact iteration semantics (the paper's reproducibility argument)."
    )


if __name__ == "__main__":
    main()
