#!/usr/bin/env python3
"""Flexible parallelism, end to end (paper Sections II-B, III-B, IV-A).

Walks the chain the paper's motivation builds:

1. profile throughput-vs-batch for the three layer shapes of Fig. 1 and
   find each one's *threshold batch size* (16 / 64 / ~2048);
2. profile every VGG19 layer and show the threshold ladder of Fig. 5;
3. partition the model with the bin-partitioned method and with the
   paper's published split;
4. show the per-sub-model token batch sizes a Fela configuration derives
   — the "flexible parallel degrees" of the title.

Run:
    python examples/flexible_parallelism.py
"""

from repro import FelaConfig, ThroughputProfiler, get_model
from repro.harness import fig1, fig5
from repro.partition import bin_partition, paper_partition


def main() -> None:
    profiler = ThroughputProfiler()

    print(fig1(profiler).render())
    print()
    print(fig5(profiler).render())
    print()

    model = get_model("vgg19")
    partition = paper_partition(model, profiler)
    config = FelaConfig(
        partition=partition,
        total_batch=512,
        num_workers=8,
        weights=(1, 2, 8),
    )
    print("Flexible parallel degrees for total batch 512, weights (1,2,8):")
    for submodel, count, batch in zip(
        partition, config.token_counts(), config.token_batches()
    ):
        print(
            f"  {submodel.name}: {count} tokens x batch {batch} "
            f"(threshold {submodel.threshold_batch}, "
            f"comm-intensive={submodel.communication_intensive})"
        )
    print()

    print("Bin-partitioned method on a model the paper does not cover:")
    print(bin_partition(get_model("vgg16"), profiler).describe())


if __name__ == "__main__":
    main()
