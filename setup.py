"""Setup shim.

The canonical metadata lives in ``pyproject.toml``.  This file exists so the
package can be installed editable (``pip install -e . --no-use-pep517``) on
offline machines whose setuptools lacks the ``wheel`` package required by
PEP 660 editable builds.
"""

from setuptools import setup

setup()
