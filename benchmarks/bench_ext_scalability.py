"""Extension: cluster-size scaling of Fela vs the DP baseline.

The paper fixes N = 8; this sweep varies the worker count at constant
total batch (strong scaling).  Fela's advantage compounds with N: DP's
ring all-reduce cost approaches 2x the model size per link regardless of
N while its per-worker batch shrinks below the saturation knees, whereas
Fela keeps token batches at the thresholds and keeps FC synchronization
inside the conditional subset.
"""

from repro.harness import render_table

WORKER_COUNTS = (2, 4, 8, 16)
BATCH = 512


def _sweep(fela_vs_dp):
    rows = {}
    for workers in WORKER_COUNTS:
        fela, dp = fela_vs_dp("vgg19", BATCH, workers)
        rows[workers] = (fela.average_throughput, dp.average_throughput)
    return rows


def test_strong_scaling(benchmark, fela_vs_dp, record_output):
    rows = benchmark.pedantic(
        _sweep, args=(fela_vs_dp,), rounds=1, iterations=1
    )
    table_rows = [
        [n, fela, dp, fela / dp] for n, (fela, dp) in rows.items()
    ]
    record_output(
        render_table(
            ["Workers", "Fela AT", "DP AT", "Fela/DP"],
            table_rows,
            title=f"Strong scaling, VGG19 total batch {BATCH}",
        ),
        "ext_scalability",
    )

    # Both runtimes benefit from more workers on this workload ...
    fela_ats = [rows[n][0] for n in WORKER_COUNTS]
    assert fela_ats == sorted(fela_ats)
    # ... Fela wins at every size, and by more at 16 than at 2.
    for n in WORKER_COUNTS:
        fela, dp = rows[n]
        assert fela > dp, f"Fela must win at N={n}"
    assert rows[16][0] / rows[16][1] > rows[2][0] / rows[2][1]
