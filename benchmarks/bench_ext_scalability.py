"""Extension: cluster-size scaling of Fela vs the DP baseline.

The paper fixes N = 8; this sweep varies the worker count at constant
total batch (strong scaling).  Fela's advantage compounds with N: DP's
ring all-reduce cost approaches 2x the model size per link regardless of
N while its per-worker batch shrinks below the saturation knees, whereas
Fela keeps token batches at the thresholds and keeps FC synchronization
inside the conditional subset.
"""

from repro.baselines import DataParallel
from repro.core import FelaConfig, FelaRuntime
from repro.harness import render_table
from repro.hardware import Cluster, ClusterSpec
from repro.models import get_model
from repro.partition import paper_partition
from repro.tuning import ConfigurationTuner

WORKER_COUNTS = (2, 4, 8, 16)
BATCH = 512


def _sweep():
    model = get_model("vgg19")
    partition = paper_partition(model)
    rows = {}
    for workers in WORKER_COUNTS:
        spec = ClusterSpec(num_nodes=workers)
        tuner = ConfigurationTuner(
            partition, BATCH, workers, cluster_spec=spec,
            profile_iterations=2,
        )
        config = tuner.tuned_config(iterations=4)
        fela = FelaRuntime(config, Cluster(spec)).run()
        dp = DataParallel(
            model, BATCH, workers, iterations=4, cluster=Cluster(spec)
        ).run()
        rows[workers] = (fela.average_throughput, dp.average_throughput)
    return rows


def test_strong_scaling(benchmark, record_output):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table_rows = [
        [n, fela, dp, fela / dp] for n, (fela, dp) in rows.items()
    ]
    record_output(
        render_table(
            ["Workers", "Fela AT", "DP AT", "Fela/DP"],
            table_rows,
            title=f"Strong scaling, VGG19 total batch {BATCH}",
        ),
        "ext_scalability",
    )

    # Both runtimes benefit from more workers on this workload ...
    fela_ats = [rows[n][0] for n in WORKER_COUNTS]
    assert fela_ats == sorted(fela_ats)
    # ... Fela wins at every size, and by more at 16 than at 2.
    for n in WORKER_COUNTS:
        fela, dp = rows[n]
        assert fela > dp, f"Fela must win at N={n}"
    assert rows[16][0] / rows[16][1] > rows[2][0] / rows[2][1]
