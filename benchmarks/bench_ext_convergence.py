"""Extension: the speed-quality product for BSP vs SSP vs ASP.

The paper compares equal-iteration throughput because Fela under BSP
leaves iteration quality untouched (footnote 18).  Combining the
simulator's measured seconds-per-iteration with the stale-gradient
convergence model yields the full picture the paper argues verbally:
SSP/ASP iterate faster but need more iterations, and the wall-clock
winner depends on how much synchronization time staleness actually
hides.
"""

from repro.convergence import ConvergenceModel
from repro.core import SyncMode
from repro.harness import ExperimentSpec, render_table

TARGET_EXCESS = 0.01


def _time_to_target(runner):
    spec = ExperimentSpec(
        model_name="vgg19", total_batch=1024, iterations=8
    )
    model = ConvergenceModel()
    modes = [
        ("bsp", SyncMode.BSP, 0),
        ("ssp-1", SyncMode.SSP, 1),
        ("ssp-4", SyncMode.SSP, 4),
        ("asp", SyncMode.ASP, 0),
    ]
    results = {}
    for label, mode, staleness in modes:
        run = runner.run(
            "fela", spec, sync_mode=mode, staleness=staleness
        )
        # ASP's effective age: its unbounded run-ahead — approximate by
        # the largest SSP bound we evaluate, doubled.
        if mode == SyncMode.ASP:
            age = model.mean_age(8)
        else:
            age = model.mean_age(staleness)
        results[label] = {
            "s_per_iter": run.mean_iteration_time,
            "iters_needed": model.iterations_to_target(TARGET_EXCESS, age),
            "time_to_target": model.time_to_target(
                TARGET_EXCESS, run.mean_iteration_time, age
            ),
        }
    return results


def test_speed_quality_product(benchmark, runner, record_output):
    results = benchmark.pedantic(
        _time_to_target, args=(runner,), rounds=1, iterations=1
    )
    rows = [
        [
            label,
            data["s_per_iter"],
            data["iters_needed"],
            data["time_to_target"],
        ]
        for label, data in results.items()
    ]
    record_output(
        render_table(
            ["Mode", "s/iteration", "iters to target", "time to target (s)"],
            rows,
            title=f"Time to excess loss {TARGET_EXCESS} (VGG19, batch 1024)",
        ),
        "ext_convergence",
    )

    # Speed: relaxing sync never slows iterations.
    assert results["ssp-1"]["s_per_iter"] <= results["bsp"]["s_per_iter"]
    # Quality: staleness always inflates the iteration count.
    assert (
        results["ssp-1"]["iters_needed"]
        > results["bsp"]["iters_needed"] - 1
    )
    assert (
        results["asp"]["iters_needed"] > results["ssp-1"]["iters_needed"]
    )
    # The paper's position: with Fela's cheap synchronization (CTD keeps
    # the FC sync small), staleness cannot buy back what it costs — BSP
    # wins the wall-clock race to the target.
    assert results["bsp"]["time_to_target"] <= min(
        data["time_to_target"] for data in results.values()
    )
