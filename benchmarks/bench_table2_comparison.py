"""Table II: qualitative comparison of representative DML solutions."""

from repro.harness import TABLE_II, render_table_ii


def test_table2_comparison(benchmark, record_output):
    text = benchmark.pedantic(render_table_ii, rounds=1, iterations=1)
    record_output(text, "table2_comparison")

    fela = TABLE_II[-1]
    assert fela.solution == "Fela"
    # Fela is the only row with every dimension covered.
    full_rows = [
        row
        for row in TABLE_II
        if all(
            (
                row.flexible_parallelism,
                row.straggler_mitigation,
                row.communication_efficiency,
                row.work_conservation,
                row.algorithm_reproducibility,
            )
        )
    ]
    assert full_rows == [fela]
