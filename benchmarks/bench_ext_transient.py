"""Extension: reactive pull vs proactive re-partitioning (Section III-C).

Not a published figure — the paper *argues* that proactive schedulers
(FlexRR/ElasticPipe-style periodic re-distribution) misfire under
transient stragglers; this benchmark measures the claim by pitting Fela's
reactive token pull against :class:`ProactiveElastic` (and static DP as
the do-nothing control) under rapidly switching stragglers.
"""

from repro.harness import ExperimentSpec, render_table
from repro.metrics import per_iteration_delay
from repro.stragglers import TransientStraggler


def _pids(runner):
    spec = ExperimentSpec(
        model_name="vgg19", total_batch=256, iterations=12
    )
    injector = TransientStraggler(6.0, hits=2, persistence=1, seed=0)
    pids = {}
    for kind in ("fela", "dp", "proactive"):
        base = runner.run(kind, spec)
        slow = runner.run(kind, spec, injector)
        pids[kind] = per_iteration_delay(slow, base)
    return pids


def test_transient_stragglers_reward_reactive_scheduling(
    benchmark, runner, record_output
):
    pids = benchmark.pedantic(_pids, args=(runner,), rounds=1, iterations=1)
    rows = [[kind, pid] for kind, pid in pids.items()]
    record_output(
        render_table(
            ["Scheduler", "PID (s)"],
            rows,
            title="Transient stragglers (2 workers hit, re-drawn every "
            "iteration, d=6 s)",
        ),
        "ext_transient",
    )

    # Fela's reactive pull wins by a wide margin.
    assert pids["fela"] < 0.6 * pids["dp"]
    # The proactive scheduler is no better than doing nothing — the
    # paper's claim that delayed re-distribution "can even worsen the
    # straggler problem".
    assert pids["proactive"] >= 0.95 * pids["dp"]
