"""Extension: sensitivity to network bandwidth (paper Section II-A).

"10 Gbps network still remains as the mainstream ... and 10~25 Gbps will
continue to dominate the market in the near future."  This sweep varies
the per-NIC line rate (1 / 10 / 25 / 40 Gbps) on fixed K40c GPUs.  On
slow fabrics Fela's communication frugality towers over DP; on very fast
ones both converge toward the pure-compute bound and the gap narrows —
the decision boundary the paper's motivation paints.

Fela re-tunes per environment — on a fast fabric the tuner widens the
conditional subset; on a slow one it shrinks it — which is exactly what
the shared ``fela_vs_dp`` sweep point does for every cluster spec.
"""

from repro.hardware import ClusterSpec
from repro.harness import render_table

GBPS = (1, 10, 25, 40)
BATCH = 256


def _sweep(fela_vs_dp):
    rows = {}
    for gbps in GBPS:
        spec = ClusterSpec(
            num_nodes=8, link_bandwidth=gbps * 0.125e9
        )
        fela, dp = fela_vs_dp("vgg19", BATCH, cluster_spec=spec)
        rows[gbps] = (fela.average_throughput, dp.average_throughput)
    return rows


def test_bandwidth_sensitivity(benchmark, fela_vs_dp, record_output):
    rows = benchmark.pedantic(
        _sweep, args=(fela_vs_dp,), rounds=1, iterations=1
    )
    table_rows = [
        [f"{gbps} Gbps", fela, dp, fela / dp]
        for gbps, (fela, dp) in rows.items()
    ]
    record_output(
        render_table(
            ["Fabric", "Fela AT", "DP AT", "Fela/DP"],
            table_rows,
            title=f"VGG19 batch {BATCH}, bandwidth sweep",
        ),
        "ext_bandwidth",
    )

    # Everyone benefits from more bandwidth (weakly).
    dp_ats = [rows[g][1] for g in GBPS]
    assert dp_ats == sorted(dp_ats)
    # Fela wins at every point, most at 1 Gbps, least at 40 Gbps.
    ratios = [rows[g][0] / rows[g][1] for g in GBPS]
    assert all(r > 1.0 for r in ratios)
    assert ratios[0] == max(ratios)
    assert ratios[-1] == min(ratios)
