"""Figure 10: probability-based straggler scenario (AT and PID).

Paper: each worker straggles with probability p in {0.1..0.5} per
iteration; d = 6 s (VGG19) / 3 s (GoogLeNet).  Fela improves AT by
19.58-33.91% vs DP (VGG19) / 22.94-43.73% (GoogLeNet) and reduces PID by
23.23-51.36% vs DP (VGG19) / 27.62-46.22% (GoogLeNet).
"""

from repro.harness import fig10


def test_fig10_vgg19(benchmark, runner, record_output):
    result = benchmark.pedantic(
        fig10,
        kwargs=dict(
            model_name="vgg19",
            probabilities=(0.1, 0.3, 0.5),
            iterations=8,
            runner=runner,
        ),
        rounds=1,
        iterations=1,
    )
    record_output(result.render(), "fig10_vgg19")

    for p in result.axis:
        fela_at = result.throughput("fela", p)
        for kind in ("dp", "mp", "hp"):
            assert fela_at > result.throughput(kind, p), (kind, p)
        assert result.pid("fela", p) < result.pid("dp", p)
        assert result.pid("fela", p) < result.pid("hp", p)

    # Fela's PID grows with p (more afflicted workers per iteration).
    fela_pids = [result.pid("fela", p) for p in result.axis]
    assert fela_pids == sorted(fela_pids)

    # PID reduction vs DP in a band consistent with the paper's
    # 23.23-51.36%.
    lo, hi = result.pid_reduction_range("dp")
    assert lo > 0.15
    assert hi < 0.95


def test_fig10_googlenet(benchmark, runner, record_output):
    result = benchmark.pedantic(
        fig10,
        kwargs=dict(
            model_name="googlenet",
            probabilities=(0.1, 0.3, 0.5),
            iterations=8,
            runner=runner,
        ),
        rounds=1,
        iterations=1,
    )
    record_output(result.render(), "fig10_googlenet")
    for p in result.axis:
        assert result.throughput("fela", p) > result.throughput("dp", p)
        assert result.pid("fela", p) < result.pid("dp", p)
