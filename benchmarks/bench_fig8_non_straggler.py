"""Figure 8: average-throughput comparison, non-straggler scenario.

Paper results (equal-iteration AT, 8-node cluster):

* VGG19 — Fela beats DP by 9.98%-3.23x, MP by 5.18-8.12x, HP by
  15.77-49.65%;
* GoogLeNet — Fela beats DP by 13.25%-2.15x, MP by 3.63-12.22x, HP by
  19.01%-1.85x;
* MP is the worst runtime everywhere; HP beats DP at small batches and
  falls behind as the batch grows.
"""

from repro.harness import fig8


def test_fig8_vgg19(benchmark, runner, record_output):
    result = benchmark.pedantic(
        fig8,
        kwargs=dict(
            model_name="vgg19",
            batches=(64, 128, 256, 512, 1024),
            iterations=8,
            runner=runner,
        ),
        rounds=1,
        iterations=1,
    )
    record_output(result.render(), "fig8_vgg19")

    for batch in result.batches:
        fela = result.throughput("fela", batch)
        # Fela wins against every baseline at every batch size.
        for kind in ("dp", "mp", "hp"):
            assert fela > result.throughput(kind, batch), (kind, batch)
        # MP is the worst everywhere.
        mp = result.throughput("mp", batch)
        for kind in ("fela", "dp", "hp"):
            assert result.throughput(kind, batch) > mp

    # Speedup magnitudes in the paper's ballpark.
    dp_lo, dp_hi = result.speedup_range("dp")
    assert 1.0 < dp_lo and dp_hi < 4.0  # paper max 3.23x
    mp_lo, mp_hi = result.speedup_range("mp")
    assert 2.5 < mp_lo and mp_hi < 15.0  # paper 5.18-8.12x
    hp_lo, hp_hi = result.speedup_range("hp")
    assert 1.0 < hp_lo and hp_hi < 2.0  # paper 15.77-49.65%

    # The HP/DP crossover: HP's advantage over DP shrinks with batch.
    hp_over_dp = [
        result.throughput("hp", b) / result.throughput("dp", b)
        for b in result.batches
    ]
    assert hp_over_dp[0] > 1.0  # HP wins at the small end
    assert hp_over_dp[-1] < hp_over_dp[0]


def test_fig8_googlenet(benchmark, runner, record_output):
    result = benchmark.pedantic(
        fig8,
        kwargs=dict(
            model_name="googlenet",
            batches=(64, 256, 1024),
            iterations=8,
            runner=runner,
        ),
        rounds=1,
        iterations=1,
    )
    record_output(result.render(), "fig8_googlenet")

    for batch in result.batches:
        fela = result.throughput("fela", batch)
        for kind in ("dp", "mp", "hp"):
            assert fela >= 0.99 * result.throughput(kind, batch)
    # MP collapses hardest on GoogLeNet (paper: up to 12.22x).
    _, mp_hi = result.speedup_range("mp")
    assert mp_hi > 4.0
