"""Figure 7 / Table III: ablation of the scheduling policies.

Paper ranges (across batch sizes): parallelism-degree tuning 8.51-51.69%,
ADS 1.64-8.21%, HF 44.80-96.30%, CTD 5.31-41.25%.

What the simulator reproduces, and what it does not (see EXPERIMENTS.md):

* **HF** is the dominant policy once there is more than one token per
  sub-token-bucket: +25-35% on VGG19 at batch >= 512, driven by the same
  mechanism the paper names (without STBs, dependency activations
  scatter — our no-HF runs move ~12x more remote bytes).  It approaches
  the paper's 44.8% lower bound but not its 96.3% peak, because the fluid
  network prices the scattered transfers at max-min fair rates and the
  simulator's lock conflicts cost sub-millisecond penalties.
* **ADS** lands at ~0% rather than the paper's 1.64-8.21%: with HF
  enabled, a worker's candidate pool is its own STB, where selection
  order barely changes completion time in a deterministic simulator.
* The two tuning rows of Table III are the Fig. 6 phase gaps, reproduced
  in-band.
"""

from repro.harness import fig7_ablation


def test_fig7_ablation_vgg19(benchmark, runner, record_output):
    result = benchmark.pedantic(
        fig7_ablation,
        kwargs=dict(
            model_name="vgg19",
            batches=(128, 512, 1024),
            iterations=6,
            runner=runner,
        ),
        rounds=1,
        iterations=1,
    )
    record_output(result.render(), "fig7_ablation_vgg19")

    # HF: the heavyweight policy (paper: 44.80-96.30%).
    hf_lo, hf_hi = result.improvement_range("hf")
    assert hf_lo > -0.02, "HF must not hurt without stragglers"
    assert hf_hi > 0.20, "HF must be a major win at large batches"

    # ADS: small and sign-stable (paper: 1.64-8.21%; simulator: ~0).
    ads_lo, ads_hi = result.improvement_range("ads")
    assert -0.05 < ads_lo
    assert ads_hi < 0.10

    # Ordering: HF dominates ADS, as in Table III.
    assert hf_hi > ads_hi

    # The tuning gaps (Table III's other two rows) are material.
    p1_gaps = [result.tuning_gaps[b][0] for b in result.batches]
    assert max(p1_gaps) > 0.0851


def test_fig7_ablation_googlenet(benchmark, runner, record_output):
    result = benchmark.pedantic(
        fig7_ablation,
        kwargs=dict(
            model_name="googlenet",
            batches=(256, 1024),
            iterations=6,
            runner=runner,
        ),
        rounds=1,
        iterations=1,
    )
    record_output(result.render(), "fig7_ablation_googlenet")
    # GoogLeNet at 32x32 is saturation-floor-bound: every policy is
    # direction-correct but magnitudes compress (documented gap).
    for policy in ("ads", "hf"):
        lo, _ = result.improvement_range(policy)
        assert lo > -0.02
