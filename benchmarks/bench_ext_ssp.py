"""Extension: SSP/ASP execution via token age (paper Section VI).

Not a published figure — the paper only sketches the design ("Fela can be
easily extended to SSP by adding the age attribute to each token").  This
benchmark measures what the extension buys: overlapping gradient
synchronization with later iterations raises throughput monotonically
with the staleness bound, at the iteration-quality cost the paper cites
as its reason to stay with BSP.
"""

from repro.core import SyncMode
from repro.harness import ExperimentSpec, render_table
from repro.stragglers import ProbabilityStraggler


def _run_modes(runner, straggler=None):
    spec = ExperimentSpec(
        model_name="vgg19", total_batch=1024, iterations=8
    )
    modes = [
        ("bsp", SyncMode.BSP, 0),
        ("ssp-1", SyncMode.SSP, 1),
        ("ssp-2", SyncMode.SSP, 2),
        ("asp", SyncMode.ASP, 0),
    ]
    results = {}
    for label, mode, staleness in modes:
        results[label] = runner.run(
            "fela",
            spec,
            straggler,
            sync_mode=mode,
            staleness=staleness,
        ).average_throughput
    return results


def test_ssp_extension(benchmark, runner, record_output):
    results = benchmark.pedantic(
        _run_modes, args=(runner,), rounds=1, iterations=1
    )
    rows = [[label, at] for label, at in results.items()]
    record_output(
        render_table(["Sync mode", "AT (samples/s)"], rows,
                     title="SSP extension, VGG19 batch 1024"),
        "ext_ssp",
    )
    # Relaxing synchronization never hurts throughput.
    assert results["ssp-1"] >= results["bsp"] - 1e-9
    assert results["ssp-2"] >= results["ssp-1"] - 1e-9
    assert results["asp"] >= results["ssp-2"] - 1e-9


def test_ssp_extension_under_stragglers(benchmark, runner):
    results = benchmark.pedantic(
        _run_modes,
        args=(runner, ProbabilityStraggler(0.3, 6.0)),
        rounds=1,
        iterations=1,
    )
    assert results["asp"] >= results["bsp"] - 1e-9


def _run_pipelined(runner):
    from repro.core import PipelinedFelaRuntime
    from repro.hardware import Cluster, ClusterSpec

    spec = ExperimentSpec(
        model_name="vgg19", total_batch=512, iterations=6
    )
    config = runner.fela_config(spec).replace(
        sync_mode=SyncMode.SSP, staleness=2
    )
    barrier = runner.run(
        "fela", spec, sync_mode=SyncMode.SSP, staleness=2
    )
    pipelined = PipelinedFelaRuntime(
        config, Cluster(ClusterSpec(num_nodes=8))
    ).run()
    return barrier.average_throughput, pipelined.average_throughput


def test_pipelined_iterations(benchmark, runner, record_output):
    """Token-level iteration pipelining (the full Section-VI extension):
    iteration k+1's tokens are handed out while k's stragglers finish."""
    barrier_at, pipelined_at = benchmark.pedantic(
        _run_pipelined, args=(runner,), rounds=1, iterations=1
    )
    record_output(
        render_table(
            ["Variant", "AT (samples/s)"],
            [["SSP, barriered iterations", barrier_at],
             ["SSP, pipelined iterations", pipelined_at]],
            title="VGG19 batch 512, staleness 2",
        ),
        "ext_pipelined",
    )
    assert pipelined_at >= 0.98 * barrier_at
