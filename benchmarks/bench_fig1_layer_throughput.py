"""Figure 1: training throughput vs batch size for three layer shapes.

Paper anchors: the throughput knee sits at batch 16 for
CONV (64,64,224,224), 64 for CONV (512,512,14,14), and ~2048 for
FC (4096,4096) on a Tesla K40c.
"""

import pytest

from repro.harness import fig1


def test_fig1_layer_throughput(benchmark, record_output):
    result = benchmark.pedantic(fig1, rounds=1, iterations=1)
    record_output(result.render(), "fig1_layer_throughput")

    # The paper's knees, exactly.
    assert result.thresholds["CONV (64,64,224,224)"] == 16
    assert result.thresholds["CONV (512,512,14,14)"] == 64
    assert result.thresholds["FC (4096,4096)"] == 2048

    for label, xs, ys in result.series:
        knee = result.thresholds[label]
        by_batch = dict(zip(xs, ys))
        max_tp = max(ys)
        # Below the knee: far from max; at the knee: saturated.
        if knee > min(xs):
            assert by_batch[knee // 2] < 0.95 * max_tp
        assert by_batch[knee] >= 0.95 * max_tp
        # Rising then flat: monotone non-decreasing.
        assert list(ys) == sorted(ys)


def test_fig1_fc_needs_far_larger_batches_than_conv(benchmark):
    result = benchmark.pedantic(fig1, rounds=1, iterations=1)
    conv_knees = [
        result.thresholds["CONV (64,64,224,224)"],
        result.thresholds["CONV (512,512,14,14)"],
    ]
    fc_knee = result.thresholds["FC (4096,4096)"]
    assert fc_knee >= 16 * max(conv_knees)
