"""Figure 5: threshold batch sizes of VGG19 layers + the bin partition.

Paper result: VGG19 splits into three sub-models — front CONV block, back
CONV block, FC block — with strictly increasing threshold batch sizes.
"""

from repro.harness import fig5
from repro.models import get_model
from repro.partition import paper_partition


def test_fig5_partition(benchmark, record_output):
    result = benchmark.pedantic(fig5, rounds=1, iterations=1)
    record_output(result.render(), "fig5_partition")

    thresholds = dict(zip(result.layer_names, result.thresholds))
    # Fig. 5's structure: conv thresholds sit orders of magnitude below
    # FC thresholds, and the back conv block needs more than the front.
    conv_thresholds = [
        t for name, t in thresholds.items() if name.startswith("conv")
    ]
    fc_thresholds = [
        t for name, t in thresholds.items() if name.startswith("fc")
    ]
    assert max(conv_thresholds) < min(fc_thresholds)
    assert thresholds["conv16"] > thresholds["conv2"]

    partition = paper_partition(get_model("vgg19"))
    assert [len(sm.trainable_layers) for sm in partition] == [8, 8, 3]
    assert partition.thresholds == sorted(partition.thresholds)


def test_fig5_bin_method_separates_conv_from_fc(benchmark):
    result = benchmark.pedantic(fig5, rounds=1, iterations=1)
    # The automatic bin partition puts all FC layers after all convs and
    # produces at least the paper's 3 groups.
    assert "SM-3" in result.bin_partition_desc
