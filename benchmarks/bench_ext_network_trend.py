"""Extension: the compute/network trend of paper Section II-A.

"The computation power has been increased by 35x [in 5 years].  By
contrast, the communication capability ... cannot match the development
speed ... such a mismatch will intensify the communication bottleneck."

This benchmark sweeps GPU generations (1x .. 32x the K40c's sustained
FLOP/s) on a fixed 10 Gbps fabric and measures how much of DP's and
Fela's iteration goes to communication.  On faster GPUs, DP's
constant-size full-model synchronization swallows the iteration while
Fela's CTD-restricted sync degrades far more slowly — the structural
reason the paper builds a hybrid-parallel, communication-frugal system.
"""

from repro.core import FelaConfig
from repro.hardware import ClusterSpec, GpuSpec
from repro.harness import render_table

SPEEDUPS = (1, 4, 8, 32)
BATCH = 256


def _sweep(fela_vs_dp, partition):
    # A fixed (untuned) Fela configuration: the sweep isolates the
    # hardware trend, so the parallelization plan must not move.
    config = FelaConfig(
        partition=partition,
        total_batch=BATCH,
        num_workers=8,
        weights=(1, 2, 8),
        conditional_subset_size=1,
        iterations=4,
    )
    rows = {}
    for speedup in SPEEDUPS:
        gpu = GpuSpec(
            peak_flops=1.5e12 * speedup,
            saturation_flops=60e9 * speedup,
        )
        spec = ClusterSpec(num_nodes=8, gpu=gpu)
        fela, dp = fela_vs_dp(
            "vgg19", BATCH, cluster_spec=spec, config=config
        )

        # Communication share: whatever the iteration spends beyond the
        # per-worker GPU busy time.
        def comm_share(result):
            busy = max(result.stats["compute_seconds_by_worker"])
            return max(0.0, 1.0 - busy / result.total_time)

        rows[speedup] = {
            "dp_at": dp.average_throughput,
            "fela_at": fela.average_throughput,
            "dp_comm": comm_share(dp),
            "fela_comm": comm_share(fela),
        }
    return rows


def test_network_bound_trend(benchmark, fela_vs_dp, runner, record_output):
    rows = benchmark.pedantic(
        _sweep,
        args=(fela_vs_dp, runner.partition("vgg19")),
        rounds=1,
        iterations=1,
    )
    table_rows = [
        [
            f"x{speedup}",
            data["dp_at"],
            f"{data['dp_comm'] * 100:.1f}%",
            data["fela_at"],
            f"{data['fela_comm'] * 100:.1f}%",
            data["fela_at"] / data["dp_at"],
        ]
        for speedup, data in rows.items()
    ]
    record_output(
        render_table(
            [
                "GPU gen",
                "DP AT",
                "DP comm share",
                "Fela AT",
                "Fela comm share",
                "Fela/DP",
            ],
            table_rows,
            title="VGG19 batch 256 on 10 Gbps as GPUs get faster (II-A)",
        ),
        "ext_network_trend",
    )

    # DP's communication share grows monotonically with GPU speed.
    dp_shares = [rows[s]["dp_comm"] for s in SPEEDUPS]
    assert dp_shares == sorted(dp_shares)
    # On 32x GPUs, DP is communication-dominated ...
    assert rows[32]["dp_comm"] > 0.5
    # ... and Fela's advantage has widened, not narrowed.
    assert (
        rows[32]["fela_at"] / rows[32]["dp_at"]
        > rows[1]["fela_at"] / rows[1]["dp_at"]
    )
