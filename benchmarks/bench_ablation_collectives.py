"""Design-choice ablation: gradient-synchronization collectives.

Not a paper figure, but it quantifies two claims the paper makes in
passing: (a) PS-style synchronization has a centralized bottleneck
(Table II's criticism of FlexPS) and (b) ring all-reduce is the right
default for a model as parameter-heavy as VGG19 on a flat 10 Gbps fabric.
"""

from repro.baselines import DataParallel
from repro.harness import render_table
from repro.models import get_model

STRATEGIES = ("ring", "tree", "ps", "hierarchical")


def _run_strategies():
    model = get_model("vgg19")
    results = {}
    for strategy in STRATEGIES:
        run = DataParallel(
            model, 256, 8, iterations=5, sync_strategy=strategy
        ).run()
        results[strategy] = run.average_throughput
    return results


def test_collective_strategy_ablation(benchmark, record_output):
    results = benchmark.pedantic(_run_strategies, rounds=1, iterations=1)
    rows = [[name, at] for name, at in results.items()]
    record_output(
        render_table(
            ["Sync strategy", "DP AT (samples/s)"],
            rows,
            title="VGG19 batch 256, 8 workers",
        ),
        "ablation_collectives",
    )

    # Ring is bandwidth-optimal: it must win on this parameter-heavy
    # model over the flat 10 Gbps fabric.
    assert results["ring"] == max(results.values())
    # The PS star is the worst full-precision option (the centralized
    # bottleneck of Table II).
    assert results["ps"] == min(results.values())
    # The tree moves 2*log2(k)/(2(k-1)/k) = ~3.4x the ring's per-link
    # bytes at k = 8, so it sits strictly between.
    assert results["ps"] < results["tree"] < results["ring"]
