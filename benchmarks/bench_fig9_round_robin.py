"""Figure 9: round-robin straggler scenario (AT and PID).

Paper: worker ``k mod N`` sleeps d seconds in iteration k; d in
{2,4,6,8,10} s for VGG19 and {1..5} s for GoogLeNet.  Fela keeps the
highest AT and reduces PID by 30.35-68.19% vs DP and 26.00-64.86% vs HP
(VGG19); MP's PID can undercut Fela's because its idle stages absorb the
sleep, while its AT stays the lowest of all runtimes.
"""

from repro.harness import fig9


def test_fig9_vgg19(benchmark, runner, record_output):
    result = benchmark.pedantic(
        fig9,
        kwargs=dict(
            model_name="vgg19",
            delays=(2.0, 6.0, 10.0),
            iterations=8,
            runner=runner,
        ),
        rounds=1,
        iterations=1,
    )
    record_output(result.render(), "fig9_vgg19")

    for d in result.axis:
        fela_at = result.throughput("fela", d)
        for kind in ("dp", "mp", "hp"):
            assert fela_at > result.throughput(kind, d), (kind, d)
        # Fela's PID undercuts the BSP baselines that wait in full.
        assert result.pid("fela", d) < result.pid("dp", d)
        assert result.pid("fela", d) < result.pid("hp", d)

    # PID reduction vs DP near the paper's band (30.35-68.19%).  At the
    # smallest delay the straggler wakes before helpers free up, so our
    # lower end dips slightly below the paper's.
    lo, hi = result.pid_reduction_range("dp")
    assert lo > 0.12
    assert hi < 0.90

    # PID grows with the injected delay for the full-wait baselines.
    dp_pids = [result.pid("dp", d) for d in result.axis]
    assert dp_pids == sorted(dp_pids)


def test_fig9_googlenet(benchmark, runner, record_output):
    result = benchmark.pedantic(
        fig9,
        kwargs=dict(
            model_name="googlenet",
            delays=(1.0, 3.0, 5.0),
            iterations=8,
            runner=runner,
        ),
        rounds=1,
        iterations=1,
    )
    record_output(result.render(), "fig9_googlenet")
    for d in result.axis:
        assert result.throughput("fela", d) > result.throughput("dp", d)
        assert result.pid("fela", d) < result.pid("dp", d)
