"""Table I: Growing Neural Network Layer Numbers.

Regenerates the paper's Table I from the model zoo and cross-checks the
quoted layer counts against the built cost models.
"""

from repro.harness import table1


def test_table1_model_zoo(benchmark, record_output):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    text = result.render()
    record_output(text, "table1_model_zoo")

    rows = {name: (year, layers, zoo) for name, year, layers, zoo in result.rows}
    # Paper rows, verbatim.
    assert rows["LeNet-5"] == (1998, 5, 5)
    assert rows["VGG19"] == (2014, 19, 19)
    assert rows["ResNet-152"] == (2015, 152, 152)
    assert rows["CUImage"][:2] == (2016, 1207)
    assert rows["SENet"][:2] == (2017, 154)
    # Every buildable model's zoo count matches the quoted layer number,
    # except GoogLeNet which we deliberately model at the paper's 12-unit
    # partition granularity.
    for name, (year, layers, zoo) in rows.items():
        if zoo == "-" or name == "GoogleNet":
            continue
        assert zoo == layers, name
