"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure of the paper.  The
rendered rows/series are written to ``benchmarks/output/<name>.txt`` so a
full ``pytest benchmarks/ --benchmark-only`` run leaves an inspectable
record of the reproduced evaluation, and the pytest-benchmark timings
measure the cost of regenerating each artifact on the simulator.

The :class:`~repro.harness.ExperimentRunner` is session-scoped: tuning
results (the expensive part) are computed once per workload and shared
across figures, exactly like the paper's one-off warm-up.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness import ExperimentRunner

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner()


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def record_output(output_dir, request):
    """Write a figure's rendered text under the benchmark's name."""

    def write(text: str, name: str | None = None) -> None:
        stem = name or request.node.name.replace("/", "_")
        path = output_dir / f"{stem}.txt"
        path.write_text(text + "\n")

    return write
