"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure of the paper.  The
rendered rows/series are written to ``benchmarks/output/<name>.txt`` so a
full ``pytest benchmarks/ --benchmark-only`` run leaves an inspectable
record of the reproduced evaluation, and the pytest-benchmark timings
measure the cost of regenerating each artifact on the simulator.

Workload construction routes through :mod:`repro.perf` — the same
:class:`~repro.perf.ScenarioContext` and shared builders the ``repro
bench`` scenarios use — so the figure benchmarks and the performance lab
agree on how a cluster is built and how a Fela configuration is tuned,
and the expensive two-phase tunings are computed once per workload and
shared across figures (the paper's one-off warm-up).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core import FelaConfig, FelaRuntime
from repro.hardware import Cluster, ClusterSpec
from repro.harness import ExperimentRunner
from repro.metrics import RunResult
from repro.perf import ScenarioContext, baseline_run, tuned_fela_config

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def perf_context() -> ScenarioContext:
    """The perf-lab scenario context backing every benchmark's setup."""
    return ScenarioContext()


@pytest.fixture(scope="session")
def runner(perf_context: ScenarioContext) -> ExperimentRunner:
    return perf_context.runner


@pytest.fixture(scope="session")
def fela_vs_dp(perf_context: ScenarioContext):
    """One sweep point: tuned Fela vs the DP baseline on a cluster spec.

    The shared body of the bandwidth / scalability / network-trend
    extension sweeps.  Pass ``config`` to pin an explicit
    :class:`FelaConfig` instead of the cached two-phase tuning.
    """

    def sweep_point(
        model_name: str,
        total_batch: int,
        num_workers: int = 8,
        cluster_spec: ClusterSpec | None = None,
        iterations: int = 4,
        config: FelaConfig | None = None,
    ) -> tuple[RunResult, RunResult]:
        spec = cluster_spec or ClusterSpec(num_nodes=num_workers)
        if config is None:
            config = tuned_fela_config(
                perf_context,
                model_name,
                total_batch,
                num_workers,
                iterations=iterations,
                cluster_spec=spec,
            )
        fela = FelaRuntime(config, Cluster(spec)).run()
        dp, _ = baseline_run(
            perf_context,
            "dp",
            model_name,
            total_batch,
            num_workers,
            iterations=iterations,
            cluster=Cluster(spec),
        )
        return fela, dp

    return sweep_point


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def record_output(output_dir, request):
    """Write a figure's rendered text under the benchmark's name."""

    def write(text: str, name: str | None = None) -> None:
        stem = name or request.node.name.replace("/", "_")
        path = output_dir / f"{stem}.txt"
        path.write_text(text + "\n")

    return write
