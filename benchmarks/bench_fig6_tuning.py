"""Figure 6: two-phase configuration tuning diagnostics.

Paper results on VGG19: 13 cases per workload (10 parallelism-degree + 3
conditional-subset); best-vs-worst savings of 8.51-51.69% in Phase 1,
5.31-41.25% in Phase 2, up to 66.78% overall; different batch sizes pick
different best configurations (e.g. {1,1,4} at 64 vs {1,8,8} at 1024).
"""

from repro.harness import fig6


def test_fig6_tuning(benchmark, runner, record_output):
    result = benchmark.pedantic(
        fig6,
        kwargs=dict(
            model_name="vgg19",
            batches=(64, 128, 256, 512, 1024),
            runner=runner,
        ),
        rounds=1,
        iterations=1,
    )
    record_output(result.render(), "fig6_tuning")

    for batch, tuning in result.tunings.items():
        assert len(tuning.cases) == 13
        assert 0 <= tuning.phase1_gap() < 1
        assert tuning.overall_gap() >= tuning.phase1_gap() - 1e-12

    # The tuning gap is material somewhere on the axis (paper: >= 8.51%
    # at every batch; we require the maximum over the axis to clear it).
    best_gap = max(t.overall_gap() for t in result.tunings.values())
    assert best_gap > 0.0851

    # Different batch sizes prefer different configurations (Fig. 6a's
    # point): the set of winning weight vectors is not a singleton.
    winners = {t.best_weights for t in result.tunings.values()}
    assert len(winners) > 1

    # Larger batches push parallelism degrees up (the {1,1,4} -> {1,8,8}
    # movement the paper narrates).
    small = result.tunings[64].best_weights
    large = result.tunings[1024].best_weights
    assert sum(large) >= sum(small)
